package stream

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"swsketch/internal/mat"
)

// PriorityKey returns the Efraimidis–Spirakis priority key for an item
// of weight w, in log space: log(u)/w for u ~ Unif(0,1). Larger keys
// correspond to larger priorities u^{1/w}; working in log space avoids
// the catastrophic precision loss of u^{1/w} for large w (e.g. the
// paper's PAMAP rows with ‖a‖² ≈ 9·10⁴, where u^{1/w} ≈ 1−10⁻⁵).
func PriorityKey(rng *rand.Rand, w float64) float64 {
	if w <= 0 {
		panic(fmt.Sprintf("stream: priority of non-positive weight %v", w))
	}
	u := rng.Float64()
	for u == 0 { // log(0) = −∞ would tie all priorities
		u = rng.Float64()
	}
	return math.Log(u) / w
}

// sampleItem is a retained row with its priority key.
type sampleItem struct {
	row []float64
	w   float64 // squared norm
	key float64
}

// sampleHeap is a min-heap on key, so the root is the eviction victim.
type sampleHeap []sampleItem

func (h sampleHeap) Len() int            { return len(h) }
func (h sampleHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h sampleHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sampleHeap) Push(x interface{}) { *h = append(*h, x.(sampleItem)) }
func (h *sampleHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// PrioritySampler maintains an ℓ-row norm-proportional sample without
// replacement over an unbounded stream (the streaming baseline of
// Section 3), via a size-ℓ min-heap of the top-ℓ priorities. The
// returned approximation rescales the sampled rows by
// ‖A‖_F / ‖A_S‖_F so that BᵀB estimates AᵀA.
type PrioritySampler struct {
	ell   int
	d     int
	rng   *rand.Rand
	heap  sampleHeap
	froSq float64 // exact ‖A‖²_F of the whole stream
}

// NewPrioritySampler returns a sampler keeping ℓ rows of dimension d.
func NewPrioritySampler(ell, d int, seed int64) *PrioritySampler {
	if ell < 1 || d < 1 {
		panic(fmt.Sprintf("stream: sampler needs ell ≥ 1 and d ≥ 1, got %d, %d", ell, d))
	}
	return &PrioritySampler{ell: ell, d: d, rng: rand.New(rand.NewSource(seed))}
}

// Update observes one row. Zero rows are skipped (they carry no mass).
func (s *PrioritySampler) Update(row []float64) {
	if len(row) != s.d {
		panic(fmt.Sprintf("stream: sampler row length %d, want %d", len(row), s.d))
	}
	w := mat.SqNorm(row)
	if w == 0 {
		return
	}
	s.froSq += w
	key := PriorityKey(s.rng, w)
	if len(s.heap) < s.ell {
		r := make([]float64, s.d)
		copy(r, row)
		heap.Push(&s.heap, sampleItem{row: r, w: w, key: key})
		return
	}
	if key > s.heap[0].key {
		r := make([]float64, s.d)
		copy(r, row)
		s.heap[0] = sampleItem{row: r, w: w, key: key}
		heap.Fix(&s.heap, 0)
	}
}

// UpdateBatch observes rows in order, validating lengths once up
// front; priorities are drawn in the same order as repeated Update
// calls, so the retained sample is identical.
func (s *PrioritySampler) UpdateBatch(rows [][]float64) {
	for i, r := range rows {
		if len(r) != s.d {
			panic(fmt.Sprintf("stream: sampler batch row %d length %d, want %d", i, len(r), s.d))
		}
	}
	for _, r := range rows {
		s.Update(r)
	}
}

// Matrix returns the rescaled sample as the approximation B.
func (s *PrioritySampler) Matrix() *mat.Dense {
	return rescaleWOR(sampleRows(s.heap), s.froSq)
}

// RowsStored reports the number of retained rows.
func (s *PrioritySampler) RowsStored() int { return len(s.heap) }

var _ Sketch = (*PrioritySampler)(nil)

func sampleRows(items []sampleItem) [][]float64 {
	rows := make([][]float64, len(items))
	for i, it := range items {
		rows[i] = it.row
	}
	return rows
}

// rescaleWOR scales a without-replacement sample so its Gram matrix
// estimates AᵀA: every row is multiplied by ‖A‖_F / ‖A_S‖_F.
func rescaleWOR(rows [][]float64, froSqA float64) *mat.Dense {
	if len(rows) == 0 {
		return mat.NewDense(0, 0)
	}
	var sampleSq float64
	for _, r := range rows {
		sampleSq += mat.SqNorm(r)
	}
	b := mat.FromRows(rows)
	if sampleSq > 0 && froSqA > 0 {
		b.Scale(math.Sqrt(froSqA / sampleSq))
	}
	return b
}

// rescaleWR scales a with-replacement sample of ℓ rows so that BᵀB is
// an unbiased estimator of AᵀA: row aᵢ is scaled by ‖A‖_F/(√ℓ‖aᵢ‖).
func rescaleWR(rows [][]float64, froSqA float64) *mat.Dense {
	ell := len(rows)
	if ell == 0 {
		return mat.NewDense(0, 0)
	}
	b := mat.FromRows(rows)
	froA := math.Sqrt(froSqA)
	sqrtEll := math.Sqrt(float64(ell))
	for i := 0; i < ell; i++ {
		ri := b.Row(i)
		n := mat.Norm2(ri)
		if n == 0 {
			continue
		}
		f := froA / (sqrtEll * n)
		for j := range ri {
			ri[j] *= f
		}
	}
	return b
}

// SampleOfflineWR draws ℓ rows from a with replacement, with
// probability proportional to squared norms, and returns the rescaled
// approximation (Section 3, "row sampling"). Used for the Figure 6
// offline experiment.
func SampleOfflineWR(a *mat.Dense, ell int, rng *rand.Rand) *mat.Dense {
	n := a.Rows()
	if n == 0 || ell < 1 {
		return mat.NewDense(0, 0)
	}
	weights := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		weights[i] = mat.SqNorm(a.Row(i))
		total += weights[i]
	}
	if total == 0 {
		return mat.NewDense(0, 0)
	}
	rows := make([][]float64, 0, ell)
	for k := 0; k < ell; k++ {
		t := rng.Float64() * total
		idx := 0
		for ; idx < n-1; idx++ {
			t -= weights[idx]
			if t <= 0 {
				break
			}
		}
		rows = append(rows, a.RowCopy(idx))
	}
	return rescaleWR(rows, total)
}

// SampleOfflineWOR draws min(ℓ, #non-zero rows) rows from a without
// replacement, with probability proportional to squared norms, and
// returns the uniformly rescaled approximation of Section 3
// (every sampled row scaled by ‖A‖_F/‖A_S‖_F).
func SampleOfflineWOR(a *mat.Dense, ell int, rng *rand.Rand) *mat.Dense {
	rows, total := offlineWORRows(a, ell, rng)
	if rows == nil {
		return mat.NewDense(0, 0)
	}
	return rescaleWOR(rows, total)
}

// SampleOfflineWORPerRow is the paper's *implemented* SWOR estimator
// (the query step of Algorithm 5.2 rescales each sampled row
// individually by ‖A‖_F/(√ℓ‖a‖), exactly like SWR). On skew-normed
// windows this caps every always-included heavy row at ‖A‖²_F/ℓ mass,
// which is what makes the covariance error *grow* with ℓ in Figure 6.
// It is provided to reproduce that experiment faithfully.
func SampleOfflineWORPerRow(a *mat.Dense, ell int, rng *rand.Rand) *mat.Dense {
	rows, total := offlineWORRows(a, ell, rng)
	if rows == nil {
		return mat.NewDense(0, 0)
	}
	return rescaleWR(rows, total)
}

// offlineWORRows draws the WOR sample itself: min(ℓ, #non-zero) rows
// with probability proportional to squared norms, plus ‖A‖²_F.
func offlineWORRows(a *mat.Dense, ell int, rng *rand.Rand) ([][]float64, float64) {
	n := a.Rows()
	if n == 0 || ell < 1 {
		return nil, 0
	}
	// Priority sampling: top-ℓ keys give a norm-proportional WOR sample.
	var total float64
	items := make([]keyedIndex, 0, n)
	for i := 0; i < n; i++ {
		w := mat.SqNorm(a.Row(i))
		if w == 0 {
			continue
		}
		total += w
		items = append(items, keyedIndex{key: PriorityKey(rng, w), idx: i})
	}
	if len(items) == 0 {
		return nil, 0
	}
	// Partial selection of the ℓ largest keys.
	if ell > len(items) {
		ell = len(items)
	}
	topKSelect(items, ell)
	rows := make([][]float64, ell)
	for k := 0; k < ell; k++ {
		rows[k] = a.RowCopy(items[k].idx)
	}
	return rows, total
}

type keyedIndex struct {
	key float64
	idx int
}

// topKSelect partially sorts items so the k largest keys occupy the
// prefix, using quickselect.
func topKSelect(items []keyedIndex, k int) {
	lo, hi := 0, len(items)-1
	for lo < hi {
		p := items[(lo+hi)/2].key
		i, j := lo, hi
		for i <= j {
			for items[i].key > p {
				i++
			}
			for items[j].key < p {
				j--
			}
			if i <= j {
				items[i], items[j] = items[j], items[i]
				i++
				j--
			}
		}
		if k-1 <= j {
			hi = j
		} else if k-1 >= i {
			lo = i
		} else {
			break
		}
	}
}
