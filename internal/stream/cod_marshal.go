package stream

import (
	"fmt"

	"swsketch/internal/binenc"
)

// COD snapshot format. A single version carries the full geometry
// (ℓ, dA, dB, buffer factor, α) followed by the aligned occupied row
// pairs — X rows then Y rows. COD is deterministic, so a restored
// co-sketch continues bit-exactly where the original left off.
const codMagic = uint64(0x434F4453_00000001) // "CODS" v1

// MarshalBinary snapshots the co-sketch state (configuration plus the
// occupied rows of both aligned buffers).
func (c *COD) MarshalBinary() ([]byte, error) {
	w := binenc.NewWriter()
	w.U64(codMagic)
	w.Int(c.ell)
	w.Int(c.dA)
	w.Int(c.dB)
	w.Int(c.bfac)
	w.F64(c.alpha)
	w.Int(c.used)
	for i := 0; i < c.used; i++ {
		w.F64s(c.bufX.Row(i))
	}
	for i := 0; i < c.used; i++ {
		w.F64s(c.bufY.Row(i))
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a snapshot produced by MarshalBinary into
// the receiver, replacing its state (configuration included). The
// decode limits are shared with FD: a short corrupt or adversarial
// snapshot cannot demand a giant allocation before the declared row
// payload is validated against the remaining bytes.
func (c *COD) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	if magic := r.U64(); magic != codMagic && r.Err() == nil {
		return fmt.Errorf("stream: COD snapshot magic %#x unrecognised", magic)
	}
	ell := r.Int()
	dA := r.Int()
	dB := r.Int()
	bfac := r.Int()
	alpha := r.F64()
	used := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("stream: COD snapshot: %w", err)
	}
	if ell < 2 || dA < 1 || dB < 1 || bfac < 1 || bfac > fdMaxBuffer {
		return fmt.Errorf("stream: COD snapshot has invalid shape ell=%d dA=%d dB=%d buffer=%d", ell, dA, dB, bfac)
	}
	if ell > fdMaxDim || dA > fdMaxDim || dB > fdMaxDim ||
		ell > fdMaxElems/dA || ell > fdMaxElems/dB {
		return fmt.Errorf("stream: COD snapshot shape ell=%d dA=%d dB=%d exceeds decode limits", ell, dA, dB)
	}
	if !(alpha > 0 && alpha <= 1) {
		return fmt.Errorf("stream: COD snapshot has invalid alpha %v", alpha)
	}
	if used < 0 || used > bfac*ell {
		return fmt.Errorf("stream: COD snapshot has invalid shape ell=%d buffer=%d used=%d", ell, bfac, used)
	}
	// Each X row costs a length prefix plus dA float64s, each Y row the
	// same with dB; the payload must hold exactly the declared pairs
	// before anything is allocated for them.
	pairBytes := (8 + 8*dA) + (8 + 8*dB)
	if used > r.Rest()/pairBytes || r.Rest() != used*pairBytes {
		return fmt.Errorf("stream: COD snapshot payload is %d bytes, want %d for %d row pairs", r.Rest(), used*pairBytes, used)
	}
	restored := NewCODOpts(ell, dA, dB, FDOpts{Buffer: bfac, Alpha: alpha})
	for restored.bufX.Rows() < used {
		restored.grow()
	}
	for i := 0; i < used; i++ {
		row := r.F64s()
		if r.Err() != nil {
			break
		}
		if len(row) != dA {
			return fmt.Errorf("stream: COD snapshot X row %d has length %d, want %d", i, len(row), dA)
		}
		copy(restored.bufX.Row(i), row)
	}
	for i := 0; i < used; i++ {
		row := r.F64s()
		if r.Err() != nil {
			break
		}
		if len(row) != dB {
			return fmt.Errorf("stream: COD snapshot Y row %d has length %d, want %d", i, len(row), dB)
		}
		copy(restored.bufY.Row(i), row)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("stream: COD snapshot: %w", err)
	}
	if r.Rest() != 0 {
		return fmt.Errorf("stream: COD snapshot has %d trailing bytes", r.Rest())
	}
	restored.used = used
	*c = *restored
	return nil
}
