package stream

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestFDSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fd := NewFD(8, 5)
	for i := 0; i < 100; i++ {
		fd.Update(randRow(rng, 5))
	}
	data, err := fd.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored FD
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !fd.Matrix().Equal(restored.Matrix(), 0) {
		t.Fatal("restored FD matrix differs")
	}
	// Determinism must continue after identical updates.
	for i := 0; i < 50; i++ {
		row := randRow(rng, 5)
		fd.Update(row)
		restored.Update(row)
	}
	if !fd.Matrix().Equal(restored.Matrix(), 1e-12) {
		t.Fatal("restored FD diverged")
	}
}

func TestFDSnapshotRejectsBadData(t *testing.T) {
	var fd FD
	for _, data := range [][]byte{nil, {1}, make([]byte, 32)} {
		if err := fd.UnmarshalBinary(data); err == nil {
			t.Fatalf("accepted %v", data)
		}
	}
	// Truncation.
	good := NewFD(4, 3)
	good.Update([]float64{1, 2, 3})
	b, _ := good.MarshalBinary()
	if err := fd.UnmarshalBinary(b[:len(b)-3]); err == nil {
		t.Fatal("accepted truncated snapshot")
	}
	if err := fd.UnmarshalBinary(append(append([]byte{}, b...), 9)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
	// v2 header with out-of-range geometry.
	bad := fdHeader(fdMagicV2, 8, 3, fdMaxBuffer+1)
	if err := fd.UnmarshalBinary(bad); err == nil {
		t.Fatal("accepted oversized buffer factor")
	}
}

// fdHeader writes a little-endian u64 magic followed by int64 fields,
// enough of a header to exercise the decoder's validation paths.
func fdHeader(magic uint64, fields ...int) []byte {
	var b bytes.Buffer
	binary.Write(&b, binary.LittleEndian, magic)
	for _, f := range fields {
		binary.Write(&b, binary.LittleEndian, int64(f))
	}
	return b.Bytes()
}

// TestFDSnapshotMagicSelection pins the on-disk versioning contract:
// classic-cadence sketches (b=1, α=1) must keep emitting the v1 magic —
// and therefore the exact PR-5 era byte layout — while any tuned
// configuration switches to v2.
func TestFDSnapshotMagicSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	classic := NewFDOpts(8, 5, FDOpts{})
	tuned := NewFDOpts(8, 5, FDOpts{Buffer: 2, Alpha: 0.5})
	for i := 0; i < 60; i++ {
		row := randRow(rng, 5)
		classic.Update(row)
		tuned.Update(row)
	}
	cb, err := classic.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(cb); got != fdMagic {
		t.Fatalf("classic config magic %#x, want v1 %#x", got, fdMagic)
	}
	tb, err := tuned.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(tb); got != fdMagicV2 {
		t.Fatalf("tuned config magic %#x, want v2 %#x", got, fdMagicV2)
	}
}

// TestFDSnapshotV1BitExact is the cross-version regression: a v1 blob
// restored by the v2-aware decoder must re-marshal to the identical
// bytes, proving nothing about the legacy format drifted.
func TestFDSnapshotV1BitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	fd := NewFD(8, 5)
	for i := 0; i < 137; i++ {
		fd.Update(randRow(rng, 5))
	}
	v1, err := fd.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored FD
	if err := restored.UnmarshalBinary(v1); err != nil {
		t.Fatal(err)
	}
	if restored.BufferFactor() != 1 || restored.Alpha() != 1 {
		t.Fatalf("v1 restore → b=%d α=%v, want classic", restored.BufferFactor(), restored.Alpha())
	}
	again, err := restored.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1, again) {
		t.Fatal("v1 snapshot did not re-marshal bit-exactly")
	}
}

// TestFDSnapshotV2RoundTrip covers the tuned-geometry format: the (b, α)
// configuration must survive the round trip and the restored sketch must
// continue the stream identically to the original.
func TestFDSnapshotV2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, o := range fastGrid {
		fd := NewFDOpts(8, 5, o)
		for i := 0; i < 120; i++ {
			fd.Update(randRow(rng, 5))
		}
		data, err := fd.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var restored FD
		if err := restored.UnmarshalBinary(data); err != nil {
			t.Fatalf("opts %+v: %v", o, err)
		}
		if restored.BufferFactor() != o.Buffer || restored.Alpha() != o.Alpha {
			t.Fatalf("opts %+v restored as b=%d α=%v", o, restored.BufferFactor(), restored.Alpha())
		}
		for i := 0; i < 80; i++ {
			row := randRow(rng, 5)
			fd.Update(row)
			restored.Update(row)
		}
		if !fd.Matrix().Equal(restored.Matrix(), 0) {
			t.Fatalf("opts %+v: restored sketch diverged from original", o)
		}
	}
}
