package stream

import (
	"math/rand"
	"testing"
)

func TestFDSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fd := NewFD(8, 5)
	for i := 0; i < 100; i++ {
		fd.Update(randRow(rng, 5))
	}
	data, err := fd.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var restored FD
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !fd.Matrix().Equal(restored.Matrix(), 0) {
		t.Fatal("restored FD matrix differs")
	}
	// Determinism must continue after identical updates.
	for i := 0; i < 50; i++ {
		row := randRow(rng, 5)
		fd.Update(row)
		restored.Update(row)
	}
	if !fd.Matrix().Equal(restored.Matrix(), 1e-12) {
		t.Fatal("restored FD diverged")
	}
}

func TestFDSnapshotRejectsBadData(t *testing.T) {
	var fd FD
	for _, data := range [][]byte{nil, {1}, make([]byte, 32)} {
		if err := fd.UnmarshalBinary(data); err == nil {
			t.Fatalf("accepted %v", data)
		}
	}
	// Truncation.
	good := NewFD(4, 3)
	good.Update([]float64{1, 2, 3})
	b, _ := good.MarshalBinary()
	if err := fd.UnmarshalBinary(b[:len(b)-3]); err == nil {
		t.Fatal("accepted truncated snapshot")
	}
	if err := fd.UnmarshalBinary(append(append([]byte{}, b...), 9)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
}
