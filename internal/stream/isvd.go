package stream

import (
	"fmt"

	"swsketch/internal/mat"
)

// ISVD is the truncated incremental-SVD heuristic — the widely used
// practical baseline catalogued by Ghashami, Desai, and Phillips (ESA
// 2014) alongside FrequentDirections. It maintains ℓ rows by buffering
// arrivals and, when the 2ℓ-row buffer fills, truncating to the top-ℓ
// singular directions Σ_ℓV_ℓᵀ — no FD-style shrinkage, so it carries
// **no worst-case guarantee**: adversarial streams that keep feeding
// energy just below the retained spectrum make it drop mass
// systematically. On benign data it is often more accurate than FD at
// equal ℓ, which is exactly why it belongs in the ablation suite.
type ISVD struct {
	ell  int
	d    int
	buf  *mat.Dense // 2ℓ×d
	used int
}

// NewISVD returns an iSVD sketch retaining ℓ directions over dimension d.
func NewISVD(ell, d int) *ISVD {
	if ell < 1 || d < 1 {
		panic(fmt.Sprintf("stream: ISVD needs ell ≥ 1 and d ≥ 1, got %d, %d", ell, d))
	}
	return &ISVD{ell: ell, d: d, buf: mat.NewDense(2*ell, d)}
}

// Update inserts one row, truncating when the buffer fills.
func (s *ISVD) Update(row []float64) {
	if len(row) != s.d {
		panic(fmt.Sprintf("stream: ISVD row length %d, want %d", len(row), s.d))
	}
	if s.used == 2*s.ell {
		s.truncate()
	}
	copy(s.buf.Row(s.used), row)
	s.used++
}

// UpdateBatch inserts rows in order, filling whole runs of free buffer
// slots between truncations, exactly as repeated Update calls would.
func (s *ISVD) UpdateBatch(rows [][]float64) {
	for i, r := range rows {
		if len(r) != s.d {
			panic(fmt.Sprintf("stream: ISVD batch row %d length %d, want %d", i, len(r), s.d))
		}
	}
	i := 0
	for i < len(rows) {
		if s.used == 2*s.ell {
			s.truncate()
		}
		n := 2*s.ell - s.used
		if rest := len(rows) - i; n > rest {
			n = rest
		}
		dst := s.buf.Data()[s.used*s.d:]
		for j := 0; j < n; j++ {
			copy(dst[j*s.d:(j+1)*s.d], rows[i+j])
		}
		s.used += n
		i += n
	}
}

// UpdateSparse inserts one sparse row.
func (s *ISVD) UpdateSparse(row mat.SparseRow) {
	if m := row.MaxIdx(); m >= s.d {
		panic(fmt.Sprintf("stream: ISVD sparse row index %d, dimension %d", m, s.d))
	}
	if s.used == 2*s.ell {
		s.truncate()
	}
	dst := s.buf.Row(s.used)
	for j := range dst {
		dst[j] = 0
	}
	row.ScatterTo(dst)
	s.used++
}

// truncate keeps the top-ℓ directions of the buffer: B ← Σ_ℓV_ℓᵀ.
func (s *ISVD) truncate() {
	if s.used == 0 {
		return
	}
	sub := mat.NewDenseData(s.used, s.d, s.buf.Data()[:s.used*s.d])
	top := mat.RankK(sub, s.ell)
	out := mat.NewDense(2*s.ell, s.d)
	copy(out.Data(), top.Data())
	s.buf = out
	s.used = top.Rows()
}

// Matrix returns the current approximation (buffer contents).
func (s *ISVD) Matrix() *mat.Dense {
	out := mat.NewDense(s.used, s.d)
	copy(out.Data(), s.buf.Data()[:s.used*s.d])
	return out
}

// RowsStored reports the buffer capacity 2ℓ.
func (s *ISVD) RowsStored() int { return 2 * s.ell }

var (
	_ Sketch          = (*ISVD)(nil)
	_ SparseUpdatable = (*ISVD)(nil)
)
