package stream

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"swsketch/internal/adversary"
)

// TestFDAdversarialWithinBound is the (b, α) property test: on streams
// built to break the amortized cadence — the shared adversary
// generators (spiked, decaying, duplicate-row) — every shipped
// configuration must stay within
// Liberty's covariance bound ‖AᵀA − BᵀB‖₂ ≤ 2‖A‖²_F/ℓ, exactly like
// the classic sketch. The bound is configuration-independent because
// a buffered shrink removes at least as much spectral mass per
// appended row as the per-ℓ cadence.
func TestFDAdversarialWithinBound(t *testing.T) {
	grid := append([]FDOpts{{}}, fastGrid...)
	for _, s := range adversary.Streams() {
		rng := rand.New(rand.NewSource(23))
		a := s.Gen(rng, 500, 12)
		for _, o := range grid {
			for _, ell := range []int{8, 16} {
				f := NewFDOpts(ell, 12, o)
				for i := 0; i < a.Rows(); i++ {
					f.Update(a.Row(i))
				}
				errAbs := covaErr(a, f.Matrix()) * a.FrobeniusSq()
				bound := 2 * a.FrobeniusSq() / float64(ell)
				if errAbs > bound {
					t.Fatalf("%s b=%d α=%v ell=%d: error %v exceeds bound %v",
						s.Name, o.Buffer, o.Alpha, ell, errAbs, bound)
				}
			}
		}
	}
}

// FuzzFDUnmarshal hardens the v2 decoder. The seed corpus carries real
// v1 and v2 snapshots (empty, mid-stream, and buffer-full states) plus
// truncated and magic-corrupted mutants; the property under fuzzing is
// that decoding never panics, that any accepted blob re-marshals
// stably, and — the cross-version contract — that an accepted v1 blob
// re-marshals bit-exactly.
func FuzzFDUnmarshal(f *testing.F) {
	rng := rand.New(rand.NewSource(29))
	snap := func(fd *FD, rows int) []byte {
		for i := 0; i < rows; i++ {
			fd.Update(randRow(rng, fd.d))
		}
		b, err := fd.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	v1Empty := snap(NewFD(4, 3), 0)
	v1Mid := snap(NewFD(4, 3), 13)
	v1Full := snap(NewFD(8, 5), 200)
	v2Mid := snap(NewFDOpts(4, 3, FDOpts{Buffer: 2, Alpha: 0.5}), 13)
	v2Full := snap(NewFDOpts(8, 5, FDOpts{Buffer: 4}), 200)
	for _, seed := range [][]byte{v1Empty, v1Mid, v1Full, v2Mid, v2Full} {
		f.Add(seed)
		f.Add(seed[:len(seed)/2]) // truncated mid-payload
	}
	corrupt := append([]byte(nil), v1Mid...)
	corrupt[0] ^= 0xFF // unrecognised magic
	f.Add(corrupt)
	f.Add([]byte{})
	// A 32-byte header claiming a ~6.5e17-element sketch: the decoder
	// must reject the shape instead of allocating for it (a fuzzing
	// find; see also testdata/fuzz/FuzzFDUnmarshal).
	f.Add(fdHeader(fdMagic, 808464432, 808464432, 808464432))

	f.Fuzz(func(t *testing.T, data []byte) {
		var fd FD
		if err := fd.UnmarshalBinary(data); err != nil {
			return // rejected blobs only need to fail cleanly
		}
		re, err := fd.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted blob failed: %v", err)
		}
		if len(data) >= 8 && binary.LittleEndian.Uint64(data) == fdMagic {
			if !bytes.Equal(re, data) {
				t.Fatalf("v1 blob did not re-marshal bit-exactly:\n in %x\nout %x", data, re)
			}
		}
		// Whatever the version, a second decode/encode cycle must be a
		// fixed point.
		var fd2 FD
		if err := fd2.UnmarshalBinary(re); err != nil {
			t.Fatalf("decode of re-marshal failed: %v", err)
		}
		re2, err := fd2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatal("marshal is not stable across a decode cycle")
		}
	})
}
