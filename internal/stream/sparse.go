package stream

import (
	"fmt"

	"swsketch/internal/mat"
)

// SparseUpdatable is implemented by streaming sketches with an O(nnz)
// (or O(ℓ·nnz)) sparse ingest path. UpdateSparse(s) must be exactly
// equivalent to Update(s.Dense(d)).
type SparseUpdatable interface {
	Sketch
	UpdateSparse(row mat.SparseRow)
}

// UpdateSparse inserts one sparse row into the FD buffer: the target
// buffer row is zeroed and scattered in O(d) for the clear plus
// O(nnz) for the values (the clear is unavoidable — the buffer slot
// may hold stale data — but no dense temporary is built).
func (f *FD) UpdateSparse(row mat.SparseRow) {
	if m := row.MaxIdx(); m >= f.d {
		panic(fmt.Sprintf("stream: FD sparse row index %d, dimension %d", m, f.d))
	}
	f.ensureRoom()
	dst := f.buf.Row(f.used)
	for j := range dst {
		dst[j] = 0
	}
	row.ScatterTo(dst)
	f.used++
}

// UpdateSparse hashes one sparse row into its bucket in O(nnz).
func (s *Hash) UpdateSparse(row mat.SparseRow) {
	if m := row.MaxIdx(); m >= s.d {
		panic(fmt.Sprintf("stream: Hash sparse row index %d, dimension %d", m, s.d))
	}
	id := s.fam.next
	s.fam.next++
	hv := splitmix64(id ^ s.fam.seed)
	bucket := int(hv % uint64(s.ell))
	sign := 1.0
	if splitmix64(hv)&1 == 0 {
		sign = -1
	}
	row.AddScaledTo(s.b.Row(bucket), sign)
}

// UpdateSparse folds one sparse row into the projection in O(ℓ·nnz)
// instead of O(ℓ·d) — the dominant win for tf-idf-like streams.
func (p *RP) UpdateSparse(row mat.SparseRow) {
	if m := row.MaxIdx(); m >= p.d {
		panic(fmt.Sprintf("stream: RP sparse row index %d, dimension %d", m, p.d))
	}
	for i := 0; i < p.ell; i++ {
		r := p.inv
		if p.rng.Int63()&1 == 0 {
			r = -r
		}
		row.AddScaledTo(p.b.Row(i), r)
	}
}

var (
	_ SparseUpdatable = (*FD)(nil)
	_ SparseUpdatable = (*Hash)(nil)
	_ SparseUpdatable = (*RP)(nil)
)
