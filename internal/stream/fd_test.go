package stream

import (
	"math/rand"
	"testing"
	"testing/quick"

	"swsketch/internal/mat"
)

func randRow(rng *rand.Rand, d int) []float64 {
	r := make([]float64, d)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	return r
}

// feed streams n random rows into sk, returning the exact matrix.
func feed(t *testing.T, sk Sketch, rng *rand.Rand, n, d int) *mat.Dense {
	t.Helper()
	a := mat.NewDense(n, d)
	for i := 0; i < n; i++ {
		row := randRow(rng, d)
		copy(a.Row(i), row)
		sk.Update(row)
	}
	return a
}

func covaErr(a, b *mat.Dense) float64 {
	return mat.CovarianceError(a.Gram(), a.FrobeniusSq(), b)
}

func TestNewFDValidation(t *testing.T) {
	for _, c := range [][2]int{{1, 5}, {0, 5}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for ell=%d d=%d", c[0], c[1])
				}
			}()
			NewFD(c[0], c[1])
		}()
	}
}

func TestFDRowLengthPanics(t *testing.T) {
	f := NewFD(4, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong row length")
		}
	}()
	f.Update([]float64{1, 2})
}

func TestFDExactWhenUnderCapacity(t *testing.T) {
	// Fewer rows than ℓ: FD stores them exactly, zero error.
	rng := rand.New(rand.NewSource(1))
	f := NewFD(20, 6)
	a := feed(t, f, rng, 10, 6)
	if e := covaErr(a, f.Matrix()); e > 1e-10 {
		t.Fatalf("under-capacity error = %v, want 0", e)
	}
	if f.Used() != 10 {
		t.Fatalf("Used = %d, want 10", f.Used())
	}
}

func TestFDErrorBound(t *testing.T) {
	// Liberty's guarantee: ‖AᵀA − BᵀB‖ ≤ 2‖A‖²_F/ℓ.
	rng := rand.New(rand.NewSource(2))
	for _, ell := range []int{8, 16, 32} {
		f := NewFD(ell, 10)
		a := feed(t, f, rng, 500, 10)
		errAbs := covaErr(a, f.Matrix()) * a.FrobeniusSq()
		bound := 2 * a.FrobeniusSq() / float64(ell)
		if errAbs > bound {
			t.Fatalf("ell=%d: error %v exceeds FD bound %v", ell, errAbs, bound)
		}
	}
}

func TestFDErrorShrinksWithEll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, d := 800, 12
	a := mat.NewDense(n, d)
	for i := 0; i < n; i++ {
		copy(a.Row(i), randRow(rng, d))
	}
	prev := 1.0
	for _, ell := range []int{4, 8, 16} {
		f := NewFD(ell, d)
		for i := 0; i < n; i++ {
			f.Update(a.Row(i))
		}
		e := covaErr(a, f.Matrix())
		if e > prev*1.1 { // allow slight non-monotonicity
			t.Fatalf("error did not shrink with ell: ell=%d err=%v prev=%v", ell, e, prev)
		}
		prev = e
	}
}

func TestFDBufferNeverExceedsEll(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := NewFD(6, 4)
	for i := 0; i < 200; i++ {
		f.Update(randRow(rng, 4))
		if f.Used() > 6 {
			t.Fatalf("Used = %d exceeds ell = 6", f.Used())
		}
	}
	if f.RowsStored() != 6 {
		t.Fatalf("RowsStored = %d, want 6", f.RowsStored())
	}
}

func TestFDShrinkLeavesRoom(t *testing.T) {
	// After a shrink at capacity, at least ⌊ℓ/2⌋ rows are free.
	rng := rand.New(rand.NewSource(5))
	f := NewFD(8, 5)
	for i := 0; i < 8; i++ {
		f.Update(randRow(rng, 5))
	}
	f.Update(randRow(rng, 5)) // triggers shrink
	if f.Used() > 5 {
		t.Fatalf("after shrink Used = %d, want ≤ ⌈ℓ/2⌉+1 = 5", f.Used())
	}
}

func TestFDMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := 8
	f1, f2 := NewFD(16, d), NewFD(16, d)
	a1 := feed(t, f1, rng, 300, d)
	a2 := feed(t, f2, rng, 300, d)
	f1.Merge(f2)

	a := mat.Stack(a1, a2)
	errAbs := covaErr(a, f1.Matrix()) * a.FrobeniusSq()
	bound := 2 * a.FrobeniusSq() / 16
	if errAbs > bound {
		t.Fatalf("merged error %v exceeds FD bound %v", errAbs, bound)
	}
	if f1.Used() > 16 {
		t.Fatalf("merge grew the sketch: Used = %d", f1.Used())
	}
}

func TestFDMergeTypeMismatchPanics(t *testing.T) {
	f := NewFD(4, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Merge(NewRP(4, 3, 1))
}

func TestFDMergeDimensionMismatchPanics(t *testing.T) {
	f := NewFD(4, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Merge(NewFD(4, 5))
}

func TestFDCloneEmpty(t *testing.T) {
	f := NewFD(6, 4)
	f.Update([]float64{1, 2, 3, 4})
	c := f.CloneEmpty().(*FD)
	if c.Used() != 0 || c.Ell() != 6 {
		t.Fatalf("CloneEmpty: used=%d ell=%d", c.Used(), c.Ell())
	}
}

func TestFDDeterministic(t *testing.T) {
	// FD is deterministic: same stream, same sketch.
	rows := make([][]float64, 50)
	rng := rand.New(rand.NewSource(7))
	for i := range rows {
		rows[i] = randRow(rng, 5)
	}
	f1, f2 := NewFD(6, 5), NewFD(6, 5)
	for _, r := range rows {
		f1.Update(r)
		f2.Update(r)
	}
	if !f1.Matrix().Equal(f2.Matrix(), 0) {
		t.Fatal("FD not deterministic")
	}
}

func TestFDSpikeDirection(t *testing.T) {
	// A dominant direction must survive sketching almost exactly.
	rng := rand.New(rand.NewSource(8))
	d := 10
	f := NewFD(8, d)
	spike := make([]float64, d)
	spike[3] = 10
	a := mat.NewDense(400, d)
	for i := 0; i < 400; i++ {
		row := randRow(rng, d)
		for j := range row {
			row[j] = row[j]*0.1 + spike[j]
		}
		copy(a.Row(i), row)
		f.Update(row)
	}
	b := f.Matrix()
	// ‖B e₃‖² should be close to ‖A e₃‖².
	unit := make([]float64, d)
	unit[3] = 1
	got := mat.SqNorm(b.MulVec(unit))
	want := mat.SqNorm(a.MulVec(unit))
	if got < 0.9*want {
		t.Fatalf("dominant direction lost: ‖Be₃‖²=%v vs ‖Ae₃‖²=%v", got, want)
	}
}

// Property: FD error bound holds for random ℓ, n, d.
func TestFDErrorBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ell := 4 + 2*rng.Intn(6)
		d := 2 + rng.Intn(8)
		n := 50 + rng.Intn(200)
		fd := NewFD(ell, d)
		a := mat.NewDense(n, d)
		for i := 0; i < n; i++ {
			row := randRow(rng, d)
			copy(a.Row(i), row)
			fd.Update(row)
		}
		errAbs := covaErr(a, fd.Matrix()) * a.FrobeniusSq()
		return errAbs <= 2*a.FrobeniusSq()/float64(ell)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFDRelativeErrorBound(t *testing.T) {
	// The sharper Ghashami–Phillips (SODA 2014) analysis — the paper's
	// reference [20] — adapted to the halving variant implemented here
	// (each shrink subtracts λ = σ²_{⌈ℓ/2⌉}, freeing ℓ/2 slots): for
	// any k < ℓ/2,
	//   ‖AᵀA − BᵀB‖ ≤ ‖A − A_k‖²_F / (ℓ/2 − k).
	// On effectively low-rank data this is far tighter than Liberty's
	// 2‖A‖²_F/ℓ; FD as implemented must satisfy it.
	rng := rand.New(rand.NewSource(20))
	d, n, ell := 16, 600, 12
	rank := 3
	dirs := make([][]float64, rank)
	for i := range dirs {
		dirs[i] = randRow(rng, d)
	}
	fd := NewFD(ell, d)
	a := mat.NewDense(n, d)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for _, b := range dirs {
			c := rng.NormFloat64()
			for j := range row {
				row[j] += c * b[j]
			}
		}
		for j := range row {
			row[j] += 0.01 * rng.NormFloat64()
		}
		copy(a.Row(i), row)
		fd.Update(row)
	}
	errAbs := covaErr(a, fd.Matrix()) * a.FrobeniusSq()

	sa := mat.SingularValues(a)
	half := ell / 2
	for _, k := range []int{1, 2, 3, 4} {
		var tail float64
		for i := k; i < len(sa); i++ {
			tail += sa[i] * sa[i]
		}
		bound := tail / float64(half-k)
		if errAbs > bound+1e-9 {
			t.Fatalf("k=%d: FD error %v exceeds relative bound %v", k, errAbs, bound)
		}
	}
	// And the relative bound at k=rank is far below Liberty's: the
	// structured data makes the gap obvious.
	var tail float64
	for i := rank; i < len(sa); i++ {
		tail += sa[i] * sa[i]
	}
	liberty := 2 * a.FrobeniusSq() / float64(ell)
	relative := tail / float64(half-rank)
	if relative > liberty/10 {
		t.Fatalf("low-rank data should separate the bounds: relative %v vs Liberty %v", relative, liberty)
	}
}
