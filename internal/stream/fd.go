package stream

import (
	"fmt"
	"math"

	"swsketch/internal/mat"
	"swsketch/internal/trace"
)

// FD is the FrequentDirections sketch of Liberty (KDD 2013) as
// described in Section 3: a deterministic ℓ×d sketch maintained by
// periodic SVD-and-shrink steps. It guarantees
//
//	‖AᵀA − BᵀB‖₂ ≤ 2‖A‖²_F / ℓ
//
// and is mergeable (Section 6.1), which the LM framework relies on.
//
// The shrink step uses the Gram trick: it eigendecomposes the smaller
// of BBᵀ and BᵀB instead of running a full SVD of the buffer, then
// rebuilds the surviving rows as rescaled combinations. This keeps the
// per-shrink cost O(ℓ²d + ℓ³) and the amortised update cost O(ℓd).
//
// # The FastFD working buffer
//
// By default the buffer holds exactly ℓ rows and shrinks as soon as it
// refills, so every ℓ−⌈ℓ/2⌉ appended rows pay one O(ℓ²d)
// decomposition. FDOpts.Buffer widens the working buffer to b·ℓ rows
// (the doubled-buffer discipline of Desai–Ghashami–Phillips, "Improved
// Practical Matrix Sketching with Guarantees"): shrinks become b−½
// times rarer while each costs only O((bℓ)²d), a net win for b=2 of
// 2–5× per row in practice. FDOpts.Alpha tunes how deep each shrink
// cuts. Neither knob affects the covariance guarantee above: every
// shrink still subtracts at least ⌈ℓ/2⌉·λ of squared Frobenius mass
// per λ it charges, which is all the 2‖A‖²_F/ℓ bound needs (the
// buffer only ever holds MORE information than the ℓ-row sketch the
// bound is stated for). RowsStored still reports ℓ — the paper's
// space-accounting measure — with the working buffer a constant-factor
// implementation detail, exposed via Stats as buffer_cap.
//
// The buffer is grown lazily from ℓ toward b·ℓ, so sketches that
// never fill (e.g. small LM blocks) keep the classic memory footprint.
type FD struct {
	ell   int // sketch size: the rows-stored measure and shrink target scale
	d     int
	bfac  int     // working-buffer factor b ≥ 1
	alpha float64 // shrink aggressiveness α ∈ (0,1]; 1 = classic halving
	m     int     // working-buffer capacity b·ℓ

	buf  *mat.Dense // working buffer; grows lazily ℓ → b·ℓ rows
	used int        // rows of buf currently occupied

	// spare is the shrink's rebuild target, reused across calls to
	// keep the steady-state update path allocation-free in the large
	// working buffers.
	spare *mat.Dense

	// shrinks counts SVD-and-shrink steps — the practical cost driver
	// Desai–Ghashami–Phillips observe diverging from worst-case bounds,
	// exported for instrumentation via Shrinks/Stats.
	shrinks uint64

	// lastAmort is the previous shrink's amortization factor: appended
	// rows absorbed per shrink relative to the classic (b=1) cadence
	// with the same survivor count. Exposed via Stats.
	lastAmort float64

	// delta accumulates the λ charged by every shrink so far: the
	// sketch's covariance error is at most Σλ, the quantity the
	// dump-snapshot framework budgets against. Not persisted — callers
	// that need it across snapshots track their own watermark.
	delta float64

	// Fast-path scratch, allocated on the first non-classic shrink and
	// reused for every one after: the partial eigensolver with its
	// workspace, the Gram buffer, and (n-side only) the Uᵀ factor.
	eig  mat.SymEigTopK
	gram *mat.Dense
	ut   *mat.Dense

	tr *trace.Tracer
}

// FDOpts configures the FastFD buffer discipline. The zero value
// selects the classic cadence (b=1, α=1), keeping existing configs —
// and their v1 snapshot bytes — unchanged.
type FDOpts struct {
	// Buffer is the working-buffer factor b: the sketch buffers up to
	// Buffer·ℓ rows between shrinks. 0 and 1 both mean the classic
	// shrink-on-full cadence; 2 is the FastFD setting the benchmarks
	// recommend. Negative values panic.
	Buffer int
	// Alpha is the shrink aggressiveness α ∈ (0,1]: each shrink
	// charges λ = σ²_{idx} with idx interpolated from ℓ (α→0, cut as
	// little as the bound allows) down to ⌈ℓ/2⌉ (α=1, the classic
	// halving). 0 means 1. Values outside (0,1] panic.
	Alpha float64
}

// Normalize resolves the zero-value defaults (b=1, α=1) and panics on
// out-of-range fields — the same validation NewFDOpts applies, exposed
// so constructors that capture an FDOpts in a factory closure can fail
// fast instead of on the first block sketch.
func (o FDOpts) Normalize() FDOpts {
	if o.Buffer < 0 {
		panic(fmt.Sprintf("stream: FD needs buffer factor ≥ 0, got %d", o.Buffer))
	}
	if o.Buffer == 0 {
		o.Buffer = 1
	}
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	if !(o.Alpha > 0 && o.Alpha <= 1) {
		panic(fmt.Sprintf("stream: FD needs alpha in (0,1], got %v", o.Alpha))
	}
	return o
}

// SetTracer attaches a tracer; each shrink emits an fd_shrink span.
func (f *FD) SetTracer(tr *trace.Tracer) { f.tr = tr }

// NewFD returns a FrequentDirections sketch with at most ell rows over
// dimension d, using the classic shrink cadence. It panics unless
// ell ≥ 2 and d ≥ 1.
func NewFD(ell, d int) *FD {
	return NewFDOpts(ell, d, FDOpts{})
}

// NewFDOpts returns a FrequentDirections sketch with the given buffer
// discipline. It panics unless ell ≥ 2, d ≥ 1, o.Buffer ≥ 0, and
// o.Alpha ∈ {0} ∪ (0,1].
func NewFDOpts(ell, d int, o FDOpts) *FD {
	if ell < 2 {
		panic(fmt.Sprintf("stream: FD needs ell ≥ 2, got %d", ell))
	}
	if d < 1 {
		panic(fmt.Sprintf("stream: FD needs d ≥ 1, got %d", d))
	}
	o = o.Normalize()
	return &FD{
		ell:   ell,
		d:     d,
		bfac:  o.Buffer,
		alpha: o.Alpha,
		m:     o.Buffer * ell,
		buf:   mat.NewDense(ell, d),
	}
}

// ensureRoom makes at least one buffer row free: grow the lazy buffer
// toward b·ℓ first, and only shrink once the full working capacity is
// occupied.
func (f *FD) ensureRoom() {
	if f.used < f.buf.Rows() {
		return
	}
	if f.buf.Rows() < f.m {
		f.grow()
		return
	}
	f.shrink()
}

// grow doubles the buffer capacity (capped at b·ℓ), preserving the
// occupied rows.
func (f *FD) grow() {
	rows := f.buf.Rows() * 2
	if rows > f.m {
		rows = f.m
	}
	nb := mat.NewDense(rows, f.d)
	copy(nb.Data(), f.buf.Data()[:f.used*f.d])
	f.buf = nb
}

// Update inserts one row, shrinking first if the working buffer is
// full.
func (f *FD) Update(row []float64) {
	if len(row) != f.d {
		panic(fmt.Sprintf("stream: FD row length %d, want %d", len(row), f.d))
	}
	f.ensureRoom()
	copy(f.buf.Row(f.used), row)
	f.used++
}

// UpdateBatch inserts rows in order, filling whole runs of free buffer
// slots between shrinks instead of re-entering Update per row. The
// result is identical to row-at-a-time insertion (a shrink happens
// exactly when the working buffer is full and another row remains),
// but the per-row interface and bounds overhead is paid once per run.
func (f *FD) UpdateBatch(rows [][]float64) {
	for i, r := range rows {
		if len(r) != f.d {
			panic(fmt.Sprintf("stream: FD batch row %d length %d, want %d", i, len(r), f.d))
		}
	}
	i := 0
	for i < len(rows) {
		f.ensureRoom()
		n := f.buf.Rows() - f.used
		if rest := len(rows) - i; n > rest {
			n = rest
		}
		dst := f.buf.Data()[f.used*f.d:]
		for j := 0; j < n; j++ {
			copy(dst[j*f.d:(j+1)*f.d], rows[i+j])
		}
		f.used += n
		i += n
	}
}

// UpdateDense inserts the rows of a dense block in order — the bulk
// ingest path for callers that already hold contiguous row-major data
// (Merge, the distributed decode path). Equivalent to UpdateBatch on
// the block's rows, but each run between shrinks is one contiguous
// copy with no [][]float64 row headers.
func (f *FD) UpdateDense(block *mat.Dense) {
	if block.Cols() != f.d {
		panic(fmt.Sprintf("stream: FD dense block has %d columns, want %d", block.Cols(), f.d))
	}
	total := block.Rows()
	src := block.Data()
	i := 0
	for i < total {
		f.ensureRoom()
		n := f.buf.Rows() - f.used
		if rest := total - i; n > rest {
			n = rest
		}
		copy(f.buf.Data()[f.used*f.d:(f.used+n)*f.d], src[i*f.d:(i+n)*f.d])
		f.used += n
		i += n
	}
}

// shrinkIdx returns the (1-based) index of the squared singular value
// charged as λ: interpolated by α from ℓ (cut as little as possible)
// down to ⌈ℓ/2⌉ (classic halving). Survivors number at most
// shrinkIdx−1, so a shrink always frees buffer rows.
func (f *FD) shrinkIdx() int {
	half := (f.ell + 1) / 2
	return f.ell - int(math.Floor(f.alpha*float64(f.ell-half)))
}

// shrinkLambda picks λ = σ²_{idx} out of the descending eigenvalue
// slice, falling back to the smallest eigenvalue (clamped to 0) when
// the spectrum is shorter than idx or σ²_{idx} vanishes.
func shrinkLambda(vals []float64, idx int) float64 {
	if idx-1 < len(vals) && vals[idx-1] > 0 {
		return vals[idx-1]
	}
	if len(vals) > 0 {
		return math.Max(vals[len(vals)-1], 0)
	}
	return 0
}

// shrink removes at least the λ-weighted tail of the occupied rows:
// eigendecompose the working buffer's Gram matrix, subtract
// λ = σ²_{idx(α)} from every squared singular value, and keep the
// surviving directions. The classic configuration (b=1, α=1) runs the
// exact historical code path, bit-for-bit; wider buffers take the fast
// path built on the partial eigensolver.
func (f *FD) shrink() {
	n := f.used
	if n == 0 {
		return
	}
	f.shrinks++
	sp := f.tr.Start("FD", trace.KindFDShrink, 0)
	if f.spare == nil || f.spare.Rows() != f.buf.Rows() {
		f.spare = mat.NewDense(f.buf.Rows(), f.d)
	}
	sub := mat.NewDenseData(n, f.d, f.buf.Data()[:n*f.d])

	var kept int
	if f.bfac == 1 && f.alpha == 1 {
		kept = f.shrinkClassic(sub, n)
	} else {
		kept = f.shrinkFast(sub, n)
	}
	f.buf, f.spare = f.spare, f.buf
	f.used = kept
	f.lastAmort = float64(n-kept) / float64(f.ell-kept)
	if sp.Active() {
		sp.EndNote(float64(n), float64(kept),
			fmt.Sprintf("occ=%d/%d amort=%.2f b=%d alpha=%g", n, f.m, f.lastAmort, f.bfac, f.alpha))
	}
}

// shrinkClassic is the historical single-buffer shrink: eigendecompose
// BBᵀ (ℓ×ℓ) with the full QL solver and rebuild survivors as UᵀB. It
// is kept verbatim (modulo the hoisted transpose copy) so classic
// sketches stay bit-identical across versions.
func (f *FD) shrinkClassic(sub *mat.Dense, n int) int {
	vals, u := mat.EigenSym(sub.GramT()) // n×n, descending σ²

	lambda := shrinkLambda(vals, f.shrinkIdx())
	f.delta += lambda

	// Count the surviving directions: the prefix of eigenvalues with
	// σ²_k > λ (vals is descending).
	kept := 0
	for kept < n && vals[kept] > lambda && vals[kept] > 0 {
		kept++
	}

	out := f.spare
	if kept > 0 {
		// Surviving rows in one shot: rows = Uᵀ·sub, computed by the
		// blocked kernel into a kept×d view of the spare buffer, then
		// rescaled per row by sqrt((σ²_k − λ)/σ²_k).
		ut := mat.NewDense(kept, n)
		mat.TransposeInto(ut, u, kept)
		dst := mat.NewDenseData(kept, f.d, out.Data()[:kept*f.d])
		mat.MulTo(dst, ut, sub)
		for k := 0; k < kept; k++ {
			s2 := vals[k]
			scale := math.Sqrt((s2 - lambda) / s2)
			rk := dst.Row(k)
			for j := range rk {
				rk[j] *= scale
			}
		}
	}
	zeroTail(out, kept, f.d)
	return kept
}

// shrinkFast is the wide-buffer shrink. It works on the smaller Gram
// side — BᵀB (d×d) when the buffer has at least d rows, BBᵀ (n×n)
// otherwise — with the reusable partial eigensolver: all eigenvalues
// (λ needs the spectrum) but only the surviving eigenvectors. On the
// d side the survivors are rebuilt directly as sqrt(σ²−λ)·vᵀ with no
// matrix product at all; on the n side as rescaled rows of UᵀB. All
// scratch is reused across shrinks, so the steady state allocates
// nothing.
func (f *FD) shrinkFast(sub *mat.Dense, n int) int {
	d := f.d
	dSide := n >= d
	if f.gram == nil {
		if dSide {
			f.gram = mat.NewDense(d, d)
		} else {
			f.gram = mat.NewDense(n, n)
		}
	}
	if dSide {
		mat.GramInto(f.gram, sub)
	} else {
		mat.GramTTiledInto(f.gram, sub)
	}
	vals := f.eig.Values(f.gram)

	lambda := shrinkLambda(vals, f.shrinkIdx())
	f.delta += lambda
	kept := 0
	for kept < len(vals) && vals[kept] > lambda && vals[kept] > 0 {
		kept++
	}

	out := f.spare
	if kept > 0 {
		if dSide {
			// B' rows are sqrt(σ²−λ)·vᵀ for the top eigenvectors v of
			// BᵀB, written straight into the spare buffer.
			vt := mat.NewDenseData(kept, d, out.Data()[:kept*d])
			f.eig.VectorsTInto(vt)
			for k := 0; k < kept; k++ {
				scale := math.Sqrt(vals[k] - lambda)
				rk := vt.Row(k)
				for j := range rk {
					rk[j] *= scale
				}
			}
		} else {
			if f.ut == nil {
				f.ut = mat.NewDense(f.ell, f.m)
			}
			ut := mat.NewDenseData(kept, n, f.ut.Data()[:kept*n])
			f.eig.VectorsTInto(ut)
			dst := mat.NewDenseData(kept, d, out.Data()[:kept*d])
			mat.MulTiledTo(dst, ut, sub)
			for k := 0; k < kept; k++ {
				s2 := vals[k]
				scale := math.Sqrt((s2 - lambda) / s2)
				rk := dst.Row(k)
				for j := range rk {
					rk[j] *= scale
				}
			}
		}
	}
	zeroTail(out, kept, f.d)
	return kept
}

// zeroTail clears the rows of out from kept to its capacity.
func zeroTail(out *mat.Dense, kept, d int) {
	tail := out.Data()[kept*d:]
	for i := range tail {
		tail[i] = 0
	}
}

// Matrix returns the occupied rows of the buffer as the approximation
// B. With a widened working buffer the row count can reach b·ℓ; the
// covariance guarantee holds regardless (the buffer holds strictly
// more of the stream than the ℓ-row sketch the bound is stated for).
func (f *FD) Matrix() *mat.Dense {
	out := mat.NewDense(f.used, f.d)
	copy(out.Data(), f.buf.Data()[:f.used*f.d])
	return out
}

// RowsStored reports the sketch size ℓ, the measure used by the
// paper's experiments. The working buffer's b·ℓ rows are a
// constant-factor implementation detail (Stats reports them as
// buffer_cap).
func (f *FD) RowsStored() int { return f.ell }

// Used reports the number of occupied rows.
func (f *FD) Used() int { return f.used }

// Ell returns the configured sketch size.
func (f *FD) Ell() int { return f.ell }

// BufferFactor returns the working-buffer factor b.
func (f *FD) BufferFactor() int { return f.bfac }

// Alpha returns the shrink aggressiveness α.
func (f *FD) Alpha() float64 { return f.alpha }

// Shrinks reports the number of SVD-and-shrink steps performed.
func (f *FD) Shrinks() uint64 { return f.shrinks }

// Delta reports the cumulative shrink charge Σλ since the sketch was
// created (or restored — the accumulator is not persisted). The FD
// analysis bounds ‖AᵀA − BᵀB‖₂ by Σλ, so Delta is a certified,
// cheaply-maintained covariance-error upper bound; the DS-FD framework
// dumps a frame exactly when its Delta crosses the error budget.
func (f *FD) Delta() float64 { return f.delta }

// Amortization reports the last shrink's amortization factor: rows
// absorbed per shrink relative to the classic (b=1) cadence with the
// same survivor count. 0 before the first shrink; ≈ b at steady state.
func (f *FD) Amortization() float64 { return f.lastAmort }

// Stats exposes the sketch's internals for instrumentation
// (structurally satisfying core.Introspector when embedded): the
// configured size and buffer discipline, occupied rows, headroom to
// the next shrink, the shrink count, and the last shrink's
// amortization factor (appends absorbed per shrink relative to the
// classic cadence; 0 before the first shrink).
func (f *FD) Stats() map[string]float64 {
	return map[string]float64{
		"ell":           float64(f.ell),
		"used":          float64(f.used),
		"headroom":      float64(f.m - f.used),
		"shrinks":       float64(f.shrinks),
		"buffer_cap":    float64(f.m),
		"buffer_factor": float64(f.bfac),
		"alpha":         f.alpha,
		"amortization":  f.lastAmort,
		"delta":         f.delta,
	}
}

// Merge absorbs other (which must be an *FD over the same dimension)
// by inserting its rows through the dense-block path; the FD analysis
// makes this merge error- and size-preserving. Other must not be used
// afterwards.
func (f *FD) Merge(other Mergeable) {
	o, ok := other.(*FD)
	if !ok {
		panic(fmt.Sprintf("stream: FD.Merge with %T", other))
	}
	if o.d != f.d {
		panic(fmt.Sprintf("stream: FD.Merge dimension %d vs %d", o.d, f.d))
	}
	if o.used == 0 {
		return
	}
	f.UpdateDense(mat.NewDenseData(o.used, o.d, o.buf.Data()[:o.used*o.d]))
}

// CloneEmpty returns a fresh FD with the same ℓ, d, and buffer
// discipline.
func (f *FD) CloneEmpty() Mergeable {
	return NewFDOpts(f.ell, f.d, FDOpts{Buffer: f.bfac, Alpha: f.alpha})
}

var _ Mergeable = (*FD)(nil)
