package stream

import (
	"fmt"
	"math"

	"swsketch/internal/mat"
	"swsketch/internal/trace"
)

// FD is the FrequentDirections sketch of Liberty (KDD 2013) as
// described in Section 3: a deterministic ℓ×d sketch maintained by
// periodic SVD-and-shrink steps. It guarantees
//
//	‖AᵀA − BᵀB‖₂ ≤ 2‖A‖²_F / ℓ
//
// and is mergeable (Section 6.1), which the LM framework relies on.
//
// The shrink step uses the Gram trick: it eigendecomposes BBᵀ (ℓ×ℓ)
// instead of running a full SVD of the ℓ×d buffer, then rebuilds the
// surviving rows as rescaled combinations UᵀB. This keeps the
// per-shrink cost O(ℓ²d + ℓ³) and the amortised update cost O(ℓd).
type FD struct {
	ell  int // maximum rows retained
	d    int
	buf  *mat.Dense // ell×d working buffer
	used int        // rows of buf currently occupied

	// spare is the shrink's rebuild target, reused across calls to
	// keep the steady-state update path allocation-free in the large
	// ℓ×d buffers.
	spare *mat.Dense // ell×d

	// shrinks counts SVD-and-shrink steps — the practical cost driver
	// Desai–Ghashami–Phillips observe diverging from worst-case bounds,
	// exported for instrumentation via Shrinks/Stats.
	shrinks uint64

	tr *trace.Tracer
}

// SetTracer attaches a tracer; each shrink emits an fd_shrink span.
func (f *FD) SetTracer(tr *trace.Tracer) { f.tr = tr }

// NewFD returns a FrequentDirections sketch with at most ell rows over
// dimension d. It panics unless ell ≥ 2 and d ≥ 1.
func NewFD(ell, d int) *FD {
	if ell < 2 {
		panic(fmt.Sprintf("stream: FD needs ell ≥ 2, got %d", ell))
	}
	if d < 1 {
		panic(fmt.Sprintf("stream: FD needs d ≥ 1, got %d", d))
	}
	return &FD{ell: ell, d: d, buf: mat.NewDense(ell, d)}
}

// Update inserts one row, shrinking first if the buffer is full.
func (f *FD) Update(row []float64) {
	if len(row) != f.d {
		panic(fmt.Sprintf("stream: FD row length %d, want %d", len(row), f.d))
	}
	if f.used == f.ell {
		f.shrink()
	}
	copy(f.buf.Row(f.used), row)
	f.used++
}

// UpdateBatch inserts rows in order, filling whole runs of free buffer
// slots between shrinks instead of re-entering Update per row. The
// result is identical to row-at-a-time insertion (a shrink happens
// exactly when the buffer is full and another row remains), but the
// per-row interface and bounds overhead is paid once per run.
func (f *FD) UpdateBatch(rows [][]float64) {
	for i, r := range rows {
		if len(r) != f.d {
			panic(fmt.Sprintf("stream: FD batch row %d length %d, want %d", i, len(r), f.d))
		}
	}
	i := 0
	for i < len(rows) {
		if f.used == f.ell {
			f.shrink()
		}
		n := f.ell - f.used
		if rest := len(rows) - i; n > rest {
			n = rest
		}
		dst := f.buf.Data()[f.used*f.d:]
		for j := 0; j < n; j++ {
			copy(dst[j*f.d:(j+1)*f.d], rows[i+j])
		}
		f.used += n
		i += n
	}
}

// shrink halves the occupied rows: compute the SVD of the buffer via
// the ℓ×ℓ Gram matrix, subtract λ = σ²_{⌈ℓ/2⌉} from every squared
// singular value, and keep the surviving directions.
func (f *FD) shrink() {
	b := f.buf
	n := f.used
	if n == 0 {
		return
	}
	f.shrinks++
	sp := f.tr.Start("FD", trace.KindFDShrink, 0)
	sub := mat.NewDenseData(n, f.d, b.Data()[:n*f.d])
	vals, u := mat.EigenSym(sub.GramT()) // n×n, descending σ²

	half := (f.ell + 1) / 2 // index ⌈ℓ/2⌉ (0-based: the ⌈ℓ/2⌉-th largest)
	var lambda float64
	if half-1 < len(vals) && vals[half-1] > 0 {
		lambda = vals[half-1]
	} else if len(vals) > 0 {
		lambda = math.Max(vals[len(vals)-1], 0)
	}

	// Count the surviving directions: the prefix of eigenvalues with
	// σ²_k > λ (vals is descending).
	kept := 0
	for kept < n && vals[kept] > lambda && vals[kept] > 0 {
		kept++
	}

	if f.spare == nil {
		f.spare = mat.NewDense(f.ell, f.d)
	}
	out := f.spare
	if kept > 0 {
		// Surviving rows in one shot: rows = Uᵀ·sub, computed by the
		// blocked kernel into a kept×d view of the spare buffer, then
		// rescaled per row by sqrt((σ²_k − λ)/σ²_k). This replaces the
		// old per-direction scalar rebuild and rides the parallel
		// compute layer for large ℓ×d sketches.
		ut := mat.NewDense(kept, n)
		for k := 0; k < kept; k++ {
			utk := ut.Row(k)
			for i := 0; i < n; i++ {
				utk[i] = u.At(i, k)
			}
		}
		dst := mat.NewDenseData(kept, f.d, out.Data()[:kept*f.d])
		mat.MulTo(dst, ut, sub)
		for k := 0; k < kept; k++ {
			s2 := vals[k]
			scale := math.Sqrt((s2 - lambda) / s2)
			rk := dst.Row(k)
			for j := range rk {
				rk[j] *= scale
			}
		}
	}
	for i := range out.Data()[kept*f.d:] {
		out.Data()[kept*f.d+i] = 0
	}
	f.buf, f.spare = out, f.buf
	f.used = kept
	sp.End(float64(n), float64(kept))
}

// Matrix returns the occupied rows of the buffer as the approximation B.
func (f *FD) Matrix() *mat.Dense {
	out := mat.NewDense(f.used, f.d)
	copy(out.Data(), f.buf.Data()[:f.used*f.d])
	return out
}

// RowsStored reports the buffer capacity ℓ (the allocated space), the
// measure used by the paper's experiments.
func (f *FD) RowsStored() int { return f.ell }

// Used reports the number of occupied rows.
func (f *FD) Used() int { return f.used }

// Ell returns the configured sketch size.
func (f *FD) Ell() int { return f.ell }

// Shrinks reports the number of SVD-and-shrink steps performed.
func (f *FD) Shrinks() uint64 { return f.shrinks }

// Stats exposes the sketch's internals for instrumentation
// (structurally satisfying core.Introspector when embedded): the
// configured size, occupied rows, zero-row headroom, and shrink count.
func (f *FD) Stats() map[string]float64 {
	return map[string]float64{
		"ell":      float64(f.ell),
		"used":     float64(f.used),
		"headroom": float64(f.ell - f.used),
		"shrinks":  float64(f.shrinks),
	}
}

// Merge absorbs other (which must be an *FD over the same dimension)
// by inserting its rows; the FD analysis makes this merge error- and
// size-preserving. Other must not be used afterwards.
func (f *FD) Merge(other Mergeable) {
	o, ok := other.(*FD)
	if !ok {
		panic(fmt.Sprintf("stream: FD.Merge with %T", other))
	}
	if o.d != f.d {
		panic(fmt.Sprintf("stream: FD.Merge dimension %d vs %d", o.d, f.d))
	}
	rows := make([][]float64, o.used)
	for i := range rows {
		rows[i] = o.buf.Row(i)
	}
	f.UpdateBatch(rows)
}

// CloneEmpty returns a fresh FD with the same ℓ and d.
func (f *FD) CloneEmpty() Mergeable { return NewFD(f.ell, f.d) }

var _ Mergeable = (*FD)(nil)
