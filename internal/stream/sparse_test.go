package stream

import (
	"math/rand"
	"testing"

	"swsketch/internal/mat"
)

// sparseStream builds parallel dense and sparse views of a random
// sparse stream.
func sparseStream(rng *rand.Rand, n, d int) ([][]float64, []mat.SparseRow) {
	dense := make([][]float64, n)
	sparse := make([]mat.SparseRow, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for k := 0; k < 1+rng.Intn(4); k++ {
			row[rng.Intn(d)] = rng.NormFloat64()
		}
		dense[i] = row
		sparse[i] = mat.SparseFromDense(row)
	}
	return dense, sparse
}

func TestFDSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := 12
	dense, sparse := sparseStream(rng, 200, d)
	fd1, fd2 := NewFD(8, d), NewFD(8, d)
	for i := range dense {
		fd1.Update(dense[i])
		fd2.UpdateSparse(sparse[i])
	}
	if !fd1.Matrix().Equal(fd2.Matrix(), 1e-12) {
		t.Fatal("FD sparse path diverges from dense path")
	}
}

func TestHashSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := 10
	dense, sparse := sparseStream(rng, 150, d)
	h1 := NewHashFamily(9).NewSketch(16, d)
	h2 := NewHashFamily(9).NewSketch(16, d)
	for i := range dense {
		h1.Update(dense[i])
		h2.UpdateSparse(sparse[i])
	}
	if !h1.Matrix().Equal(h2.Matrix(), 1e-12) {
		t.Fatal("Hash sparse path diverges from dense path")
	}
}

func TestRPSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := 10
	dense, sparse := sparseStream(rng, 150, d)
	p1, p2 := NewRP(32, d, 7), NewRP(32, d, 7)
	for i := range dense {
		p1.Update(dense[i])
		p2.UpdateSparse(sparse[i])
	}
	if !p1.Matrix().Equal(p2.Matrix(), 1e-12) {
		t.Fatal("RP sparse path diverges from dense path")
	}
}

func TestSparseOutOfBoundsPanics(t *testing.T) {
	row := mat.NewSparseRow([]int{50}, []float64{1}, -1)
	for name, f := range map[string]func(){
		"FD":   func() { NewFD(4, 10).UpdateSparse(row) },
		"Hash": func() { NewHashFamily(1).NewSketch(4, 10).UpdateSparse(row) },
		"RP":   func() { NewRP(4, 10, 1).UpdateSparse(row) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
