package stream

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"swsketch/internal/mat"
)

func TestPriorityKeyPanicsOnBadWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for w=%v", w)
				}
			}()
			PriorityKey(rng, w)
		}()
	}
}

func TestPriorityKeyOrderingStatistics(t *testing.T) {
	// An item with weight 3 among unit weights should win the maximum
	// priority about 3/(3+n−1) of the time.
	rng := rand.New(rand.NewSource(2))
	trials, n := 20000, 10
	wins := 0
	for tr := 0; tr < trials; tr++ {
		best, bestIdx := math.Inf(-1), -1
		for i := 0; i < n; i++ {
			w := 1.0
			if i == 0 {
				w = 3
			}
			if k := PriorityKey(rng, w); k > best {
				best, bestIdx = k, i
			}
		}
		if bestIdx == 0 {
			wins++
		}
	}
	got := float64(wins) / float64(trials)
	want := 3.0 / 12.0
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("heavy item won %.3f of trials, want ≈ %.3f", got, want)
	}
}

func TestNewPrioritySamplerValidation(t *testing.T) {
	for _, c := range [][2]int{{0, 5}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for ell=%d d=%d", c[0], c[1])
				}
			}()
			NewPrioritySampler(c[0], c[1], 1)
		}()
	}
}

func TestPrioritySamplerKeepsEllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewPrioritySampler(10, 4, 4)
	for i := 0; i < 500; i++ {
		s.Update(randRow(rng, 4))
	}
	if s.RowsStored() != 10 {
		t.Fatalf("RowsStored = %d, want 10", s.RowsStored())
	}
	if b := s.Matrix(); b.Rows() != 10 || b.Cols() != 4 {
		t.Fatalf("Matrix dims = %d×%d", b.Rows(), b.Cols())
	}
}

func TestPrioritySamplerSkipsZeroRows(t *testing.T) {
	s := NewPrioritySampler(5, 3, 5)
	s.Update([]float64{0, 0, 0})
	if s.RowsStored() != 0 {
		t.Fatal("zero row should be skipped")
	}
}

func TestPrioritySamplerUnderfull(t *testing.T) {
	s := NewPrioritySampler(10, 3, 6)
	s.Update([]float64{1, 0, 0})
	s.Update([]float64{0, 2, 0})
	b := s.Matrix()
	if b.Rows() != 2 {
		t.Fatalf("Matrix rows = %d, want 2", b.Rows())
	}
	// With all rows sampled, the WOR rescale is exact: BᵀB = AᵀA.
	a := mat.FromRows([][]float64{{1, 0, 0}, {0, 2, 0}})
	if e := covaErr(a, b); e > 1e-10 {
		t.Fatalf("exact sample error = %v", e)
	}
}

func TestPrioritySamplerErrorReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := 6
	// Average error over seeds: sampling is noisy but with ℓ=200 of
	// 1000 random rows the covariance error should be modest.
	var sum float64
	const seeds = 5
	for sd := int64(0); sd < seeds; sd++ {
		s := NewPrioritySampler(200, d, 70+sd)
		a := feed(t, s, rng, 1000, d)
		sum += covaErr(a, s.Matrix())
	}
	if avg := sum / seeds; avg > 0.25 {
		t.Fatalf("avg sampler error = %v, too large", avg)
	}
}

func TestSampleOfflineWREdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if b := SampleOfflineWR(mat.NewDense(0, 3), 5, rng); b.Rows() != 0 {
		t.Fatal("empty input should give empty sample")
	}
	if b := SampleOfflineWR(mat.NewDense(3, 3), 5, rng); b.Rows() != 0 {
		t.Fatal("all-zero input should give empty sample")
	}
	if b := SampleOfflineWR(mat.FromRows([][]float64{{1, 0}}), 0, rng); b.Rows() != 0 {
		t.Fatal("ell=0 should give empty sample")
	}
}

func TestSampleOfflineWRUnbiased(t *testing.T) {
	// E[BᵀB] = AᵀA: average many samples and compare.
	rng := rand.New(rand.NewSource(9))
	a := mat.FromRows([][]float64{
		{2, 0, 0},
		{0, 1, 0},
		{1, 1, 1},
		{0, 0, 3},
	})
	avg := mat.NewDense(3, 3)
	const trials = 3000
	for i := 0; i < trials; i++ {
		b := SampleOfflineWR(a, 4, rng)
		avg.Add(b.Gram())
	}
	avg.Scale(1.0 / trials)
	want := a.Gram()
	diff := avg.Clone().Sub(want)
	if rel := diff.Frobenius() / want.Frobenius(); rel > 0.05 {
		t.Fatalf("E[BᵀB] deviates from AᵀA by %.3f relative", rel)
	}
}

func TestSampleOfflineWORExactWhenEllCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := mat.FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	b := SampleOfflineWOR(a, 10, rng)
	if b.Rows() != 3 {
		t.Fatalf("rows = %d, want 3 (all)", b.Rows())
	}
	if e := covaErr(a, b); e > 1e-10 {
		t.Fatalf("full WOR sample error = %v", e)
	}
}

func TestSampleOfflineWORSkipsZeroRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := mat.FromRows([][]float64{{0, 0}, {1, 1}, {0, 0}})
	b := SampleOfflineWOR(a, 5, rng)
	if b.Rows() != 1 {
		t.Fatalf("rows = %d, want 1 (only non-zero)", b.Rows())
	}
}

func TestSampleOfflineWORInclusionProbabilities(t *testing.T) {
	// Heavier rows must be sampled more often when ℓ < n.
	rng := rand.New(rand.NewSource(12))
	// Heavy row points along e₀, light rows along e₁, so the sampled
	// row's direction identifies it even after rescaling.
	a := mat.FromRows([][]float64{
		{3, 0}, // w = 9
		{0, 1}, // w = 1
		{0, 1},
		{0, 1},
	})
	heavy := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		b := SampleOfflineWOR(a, 1, rng)
		if math.Abs(b.At(0, 0)) > math.Abs(b.At(0, 1)) {
			heavy++
		}
	}
	got := float64(heavy) / trials
	want := 9.0 / 12.0
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("heavy row sampled %.3f, want ≈ %.3f", got, want)
	}
}

func TestSkewedWindowWORPerRowDegrades(t *testing.T) {
	// The paper's Figure 6 phenomenon: on a window of a few huge rows
	// and many tiny rows, the per-row-rescaled SWOR estimator (what the
	// paper implemented) has error that *grows* with ℓ, because each
	// always-included heavy row is capped at ‖A‖²_F/ℓ mass.
	rng := rand.New(rand.NewSource(13))
	d := 5
	n := 400
	a := mat.NewDense(n, d)
	for i := 0; i < n; i++ {
		row := randRow(rng, d)
		scale := 0.05 // tiny rows
		if i < 20 {
			scale = 30 // few huge rows
		}
		for j := range row {
			a.Set(i, j, row[j]*scale)
		}
	}
	errAt := func(ell int) float64 {
		var sum float64
		const seeds = 8
		for s := 0; s < seeds; s++ {
			b := SampleOfflineWORPerRow(a, ell, rng)
			sum += covaErr(a, b)
		}
		return sum / seeds
	}
	small := errAt(20)  // exactly the huge rows
	large := errAt(120) // forced to include tiny rows
	if large < small {
		t.Fatalf("per-row WOR error did not grow with ℓ on skewed window: ℓ=20→%v, ℓ=120→%v", small, large)
	}
	// The theoretically sound uniform rescale must NOT degrade much by
	// comparison: it stays below the per-row estimator at large ℓ.
	var uni float64
	for s := 0; s < 8; s++ {
		uni += covaErr(a, SampleOfflineWOR(a, 120, rng))
	}
	uni /= 8
	if uni > large {
		t.Fatalf("uniform WOR (%v) should beat per-row WOR (%v) at ℓ=120", uni, large)
	}
}

func TestTopKSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		k := 1 + rng.Intn(n)
		items := make([]keyedIndex, n)
		keys := make([]float64, n)
		for i := range items {
			keys[i] = rng.Float64()
			items[i] = keyedIndex{key: keys[i], idx: i}
		}
		topKSelect(items, k)
		sort.Sort(sort.Reverse(sort.Float64Slice(keys)))
		got := make([]float64, k)
		for i := 0; i < k; i++ {
			got[i] = items[i].key
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(got)))
		for i := 0; i < k; i++ {
			if got[i] != keys[i] {
				t.Fatalf("trial %d: top-%d selection wrong at %d: %v vs %v", trial, k, i, got[i], keys[i])
			}
		}
	}
}
