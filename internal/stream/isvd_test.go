package stream

import (
	"math"
	"math/rand"
	"testing"

	"swsketch/internal/mat"
)

func TestISVDValidation(t *testing.T) {
	for _, c := range [][2]int{{0, 5}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v", c)
				}
			}()
			NewISVD(c[0], c[1])
		}()
	}
}

func TestISVDExactUnderCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewISVD(10, 5)
	a := feed(t, s, rng, 15, 5) // under the 2ℓ=20 buffer
	if e := covaErr(a, s.Matrix()); e > 1e-10 {
		t.Fatalf("under-capacity error = %v", e)
	}
}

func TestISVDGoodOnBenignData(t *testing.T) {
	// Low-rank + noise: iSVD should track the dominant subspace well.
	rng := rand.New(rand.NewSource(2))
	d, k := 12, 3
	basis := make([][]float64, k)
	for i := range basis {
		basis[i] = randRow(rng, d)
	}
	s := NewISVD(6, d)
	a := mat.NewDense(500, d)
	for i := 0; i < 500; i++ {
		row := make([]float64, d)
		for _, b := range basis {
			c := rng.NormFloat64()
			for j := range row {
				row[j] += c * b[j]
			}
		}
		for j := range row {
			row[j] += 0.05 * rng.NormFloat64()
		}
		copy(a.Row(i), row)
		s.Update(row)
	}
	if e := covaErr(a, s.Matrix()); e > 0.05 {
		t.Fatalf("benign-data error = %v", e)
	}
}

func TestISVDNoGuaranteeVsFD(t *testing.T) {
	// The classic pattern that breaks truncation-only sketches
	// (Ghashami–Desai–Phillips): strong directions establish the
	// retained spectrum, then one fixed direction keeps arriving with
	// per-batch mass below the truncation threshold. iSVD deletes it at
	// every truncation even though its *cumulative* mass eventually
	// dominates; FD's shrinkage charges every deletion against its
	// bound instead.
	d := 10
	ell := 4
	isvd := NewISVD(ell, d)
	fd := NewFD(2*ell, d) // same 2ℓ space
	a := mat.NewDense(0, d)
	addRow := func(row []float64) {
		na := mat.NewDense(a.Rows()+1, d)
		copy(na.Data(), a.Data())
		copy(na.Row(a.Rows()), row)
		a = na
		isvd.Update(row)
		fd.Update(row)
	}
	// Strong initial directions e₀..e₃ with mass 100 each.
	for i := 0; i < ell; i++ {
		row := make([]float64, d)
		row[i] = 10
		addRow(row)
	}
	// 300 unit-mass rows along e₄: each 2ℓ-batch carries mass ≤ 8 along
	// e₄, far below the retained σ² = 100, so iSVD drops it every time —
	// while the true accumulated e₄ mass (300) outgrows every retained
	// direction.
	for rep := 0; rep < 300; rep++ {
		row := make([]float64, d)
		row[4] = 1
		addRow(row)
	}
	errISVD := covaErr(a, isvd.Matrix())
	errFD := covaErr(a, fd.Matrix())
	if errISVD <= errFD {
		t.Fatalf("expected iSVD to lose on the accumulating direction: iSVD %v vs FD %v", errISVD, errFD)
	}
	// FD must still satisfy its guarantee.
	bound := 2 / float64(2*ell)
	if errFD > bound+1e-9 {
		t.Fatalf("FD error %v above its bound %v", errFD, bound)
	}
}

func TestISVDSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := 10
	dense, sparse := sparseStream(rng, 200, d)
	s1, s2 := NewISVD(5, d), NewISVD(5, d)
	for i := range dense {
		s1.Update(dense[i])
		s2.UpdateSparse(sparse[i])
	}
	if !s1.Matrix().Equal(s2.Matrix(), 1e-12) {
		t.Fatal("iSVD sparse path diverges")
	}
}

func TestISVDMassNeverExceedsStream(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewISVD(4, 6)
	var total float64
	for i := 0; i < 300; i++ {
		row := randRow(rng, 6)
		total += mat.SqNorm(row)
		s.Update(row)
		if m := s.Matrix().FrobeniusSq(); m > total+1e-6 || math.IsNaN(m) {
			t.Fatalf("sketch mass %v exceeds stream mass %v", m, total)
		}
	}
}
