package stream

import (
	"math/rand"
	"testing"

	"swsketch/internal/mat"
)

// TestUpdateBatchMatchesUpdate pins every streaming sketch's bulk
// ingest to row-at-a-time feeding with tolerance 0: FD and ISVD fill
// identical buffer runs between shrinks/truncations, and RP, Hash, and
// the sampler consume their randomness in the same order on both
// paths, so the answers must be bit-identical.
func TestUpdateBatchMatchesUpdate(t *testing.T) {
	const d = 7
	builders := map[string]func() Sketch{
		"FD":      func() Sketch { return NewFD(6, d) },
		"ISVD":    func() Sketch { return NewISVD(4, d) },
		"RP":      func() Sketch { return NewRP(5, d, 3) },
		"Hash":    func() Sketch { return NewHashFamily(9).NewSketch(5, d) },
		"Sampler": func() Sketch { return NewPrioritySampler(4, d, 11) },
	}
	for name, build := range builders {
		for _, batchLen := range []int{1, 2, 5, 17, 64} {
			rng := rand.New(rand.NewSource(21))
			rows := make([][]float64, 50)
			for i := range rows {
				rows[i] = randRow(rng, d)
			}
			byRow := build()
			for _, r := range rows {
				byRow.Update(r)
			}
			byBatch := build()
			for i := 0; i < len(rows); i += batchLen {
				j := i + batchLen
				if j > len(rows) {
					j = len(rows)
				}
				byBatch.UpdateBatch(rows[i:j])
			}
			if !byRow.Matrix().Equal(byBatch.Matrix(), 0) {
				t.Fatalf("%s: batch ingest (chunk %d) diverges from row-at-a-time", name, batchLen)
			}
			if byRow.RowsStored() != byBatch.RowsStored() {
				t.Fatalf("%s: RowsStored diverges: %d vs %d", name, byRow.RowsStored(), byBatch.RowsStored())
			}
		}
	}
}

// TestFDUpdateBatchValidatesUpFront asserts a bad row anywhere in the
// batch panics before any row is ingested (all-or-nothing).
func TestFDUpdateBatchValidatesUpFront(t *testing.T) {
	f := NewFD(4, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for short row")
			}
		}()
		f.UpdateBatch([][]float64{{1, 2, 3}, {1, 2}})
	}()
	if f.Used() != 0 {
		t.Fatalf("rejected batch left %d rows behind", f.Used())
	}
}

// TestFDMergeMatchesUpdates pins Merge (now routed through the bulk
// path) to feeding the other sketch's rows one at a time.
func TestFDMergeMatchesUpdates(t *testing.T) {
	const d = 6
	rng := rand.New(rand.NewSource(5))
	a := NewFD(5, d)
	b := NewFD(5, d)
	for i := 0; i < 23; i++ {
		a.Update(randRow(rng, d))
	}
	for i := 0; i < 17; i++ {
		b.Update(randRow(rng, d))
	}
	viaRows := NewFD(5, d)
	viaRows.Merge(a)
	want := mat.NewDense(0, 0)
	{
		m := b.Matrix()
		ref := NewFD(5, d)
		ref.Merge(a)
		for i := 0; i < m.Rows(); i++ {
			ref.Update(m.Row(i))
		}
		want = ref.Matrix()
	}
	viaRows.Merge(b)
	if !viaRows.Matrix().Equal(want, 0) {
		t.Fatal("Merge diverges from feeding the merged sketch's rows in order")
	}
}
