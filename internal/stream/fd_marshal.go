package stream

import (
	"fmt"

	"swsketch/internal/binenc"
)

// fdMagic versions the FD snapshot format.
const fdMagic = uint64(0x46445348_00000001) // "FDSH" v1

// MarshalBinary snapshots the sketch state (configuration plus the
// occupied buffer rows). FD is deterministic, so a restored sketch
// continues exactly where the original left off.
func (f *FD) MarshalBinary() ([]byte, error) {
	w := binenc.NewWriter()
	w.U64(fdMagic)
	w.Int(f.ell)
	w.Int(f.d)
	w.Int(f.used)
	for i := 0; i < f.used; i++ {
		w.F64s(f.buf.Row(i))
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a snapshot produced by MarshalBinary into
// the receiver, replacing its state. The receiver's configuration is
// overwritten by the snapshot's.
func (f *FD) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	if magic := r.U64(); magic != fdMagic && r.Err() == nil {
		return fmt.Errorf("stream: FD snapshot magic %#x unrecognised", magic)
	}
	ell := r.Int()
	d := r.Int()
	used := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("stream: FD snapshot: %w", err)
	}
	if ell < 2 || d < 1 || used < 0 || used > ell {
		return fmt.Errorf("stream: FD snapshot has invalid shape ell=%d d=%d used=%d", ell, d, used)
	}
	restored := NewFD(ell, d)
	for i := 0; i < used; i++ {
		row := r.F64s()
		if r.Err() != nil {
			break
		}
		if len(row) != d {
			return fmt.Errorf("stream: FD snapshot row %d has length %d, want %d", i, len(row), d)
		}
		copy(restored.buf.Row(i), row)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("stream: FD snapshot: %w", err)
	}
	if r.Rest() != 0 {
		return fmt.Errorf("stream: FD snapshot has %d trailing bytes", r.Rest())
	}
	restored.used = used
	*f = *restored
	return nil
}
