package stream

import (
	"fmt"

	"swsketch/internal/binenc"
)

// FD snapshot format versions. Classic sketches (b=1, α=1) write v1 —
// byte-identical to every blob ever produced before the FastFD buffer
// existed — so persisted default-config state round-trips across
// versions unchanged. Non-classic sketches write v2, which carries the
// buffer geometry after the shape header. Decode accepts both.
const (
	fdMagic   = uint64(0x46445348_00000001) // "FDSH" v1: fixed ℓ×d buffer
	fdMagicV2 = uint64(0x46445348_00000002) // "FDSH" v2: v1 + (b, α) geometry
)

// Decode limits: far above any sane configuration, low enough that a
// short corrupt or adversarial snapshot cannot demand a giant
// allocation before row data is validated. fdMaxBuffer bounds the
// buffer factor, fdMaxDim each of ℓ and d, and fdMaxElems their
// product — the ℓ×d working buffer the decoder allocates eagerly.
const (
	fdMaxBuffer = 1 << 16
	fdMaxDim    = 1 << 24
	fdMaxElems  = 1 << 26
)

// MarshalBinary snapshots the sketch state (configuration plus the
// occupied buffer rows). FD is deterministic, so a restored sketch
// continues exactly where the original left off. Classic-cadence
// sketches emit the v1 format bit-for-bit; widened or α-tuned
// sketches emit v2.
func (f *FD) MarshalBinary() ([]byte, error) {
	w := binenc.NewWriter()
	if f.bfac == 1 && f.alpha == 1 {
		w.U64(fdMagic)
		w.Int(f.ell)
		w.Int(f.d)
	} else {
		w.U64(fdMagicV2)
		w.Int(f.ell)
		w.Int(f.d)
		w.Int(f.bfac)
		w.F64(f.alpha)
	}
	w.Int(f.used)
	for i := 0; i < f.used; i++ {
		w.F64s(f.buf.Row(i))
	}
	return w.Bytes(), nil
}

// UnmarshalBinary restores a snapshot produced by MarshalBinary into
// the receiver, replacing its state. The receiver's configuration is
// overwritten by the snapshot's; v1 snapshots restore to the classic
// cadence (b=1, α=1) that produced them.
func (f *FD) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	magic := r.U64()
	if magic != fdMagic && magic != fdMagicV2 && r.Err() == nil {
		return fmt.Errorf("stream: FD snapshot magic %#x unrecognised", magic)
	}
	ell := r.Int()
	d := r.Int()
	bfac, alpha := 1, 1.0
	if magic == fdMagicV2 {
		bfac = r.Int()
		alpha = r.F64()
	}
	used := r.Int()
	if err := r.Err(); err != nil {
		return fmt.Errorf("stream: FD snapshot: %w", err)
	}
	if ell < 2 || d < 1 || bfac < 1 || bfac > fdMaxBuffer {
		return fmt.Errorf("stream: FD snapshot has invalid shape ell=%d d=%d buffer=%d", ell, d, bfac)
	}
	if ell > fdMaxDim || d > fdMaxDim || ell > fdMaxElems/d {
		return fmt.Errorf("stream: FD snapshot shape ell=%d d=%d exceeds decode limits", ell, d)
	}
	if !(alpha > 0 && alpha <= 1) {
		return fmt.Errorf("stream: FD snapshot has invalid alpha %v", alpha)
	}
	if used < 0 || used > bfac*ell {
		return fmt.Errorf("stream: FD snapshot has invalid shape ell=%d d=%d buffer=%d used=%d", ell, d, bfac, used)
	}
	// Each row costs a length prefix plus d float64s; the payload must
	// hold exactly the declared rows before anything is allocated for
	// them (the division keeps the size arithmetic overflow-free).
	rowBytes := 8 + 8*d
	if used > r.Rest()/rowBytes || r.Rest() != used*rowBytes {
		return fmt.Errorf("stream: FD snapshot payload is %d bytes, want %d for %d rows", r.Rest(), used*rowBytes, used)
	}
	restored := NewFDOpts(ell, d, FDOpts{Buffer: bfac, Alpha: alpha})
	for restored.buf.Rows() < used {
		restored.grow()
	}
	for i := 0; i < used; i++ {
		row := r.F64s()
		if r.Err() != nil {
			break
		}
		if len(row) != d {
			return fmt.Errorf("stream: FD snapshot row %d has length %d, want %d", i, len(row), d)
		}
		copy(restored.buf.Row(i), row)
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("stream: FD snapshot: %w", err)
	}
	if r.Rest() != 0 {
		return fmt.Errorf("stream: FD snapshot has %d trailing bytes", r.Rest())
	}
	restored.used = used
	*f = *restored
	return nil
}
