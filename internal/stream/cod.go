package stream

import (
	"fmt"
	"math"

	"swsketch/internal/mat"
	"swsketch/internal/trace"
)

// COD is a co-occurring-directions co-sketch for approximate matrix
// multiplication (AMM): it observes a stream of paired rows (aᵢ, bᵢ)
// from two correlated streams A ∈ R^{n×dA} and B ∈ R^{n×dB} and
// maintains two aligned buffers X, Y of at most ℓ rows each such that
//
//	‖AᵀB − XᵀY‖₂ ≤ Σδ ≈ O(‖A‖_F·‖B‖_F / ℓ),
//
// the co-sketch primitive behind "Optimal Approximate Matrix
// Multiplication over Sliding Window" (arXiv 2502.17940). The shared
// projection state is what makes the product estimate work: each
// shrink rotates BOTH buffers into the singular basis of the current
// product estimate XᵀY and soft-thresholds the product spectrum, so
// the two sides stay aligned row-for-row.
//
// Like FD, COD is deterministic and mergeable (feed the other
// co-sketch's row pairs through the bulk path), which is exactly what
// the LM framework needs to lift it to sliding windows; and like
// FastFD it supports a widened working buffer (FDOpts.Buffer) that
// amortises shrinks, with FDOpts.Alpha tuning the cut depth.
//
// # Shrink step
//
// With X (n×dA), Y (n×dB) the occupied buffer rows:
//
//	QR(Xᵀ) = Qx·Rx, QR(Yᵀ) = Qy·Ry   (thin; Qx dA×kx, Rx kx×n)
//	M = Rx·Ryᵀ, SVD(M) = U·Σ·Vᵀ      (so XᵀY = Qx·U·Σ·Vᵀ·Qyᵀ)
//	δ = σ_idx(α), Σ̃ = max(Σ − δ, 0)
//	X' = Σ̃^{1/2}·Uᵀ·Qxᵀ, Y' = Σ̃^{1/2}·Vᵀ·Qyᵀ
//
// Every singular value of the product estimate moves by at most δ, so
// one shrink charges exactly δ of spectral product error — the
// accumulated Σδ is a certified error bound, exposed via Delta like
// FD's.
//
// # The stacked-row embedding
//
// COD implements the plain Sketch/Mergeable interfaces over STACKED
// rows [a|b] of dimension dA+dB: Update splits the row internally and
// Matrix returns the aligned [X|Y] rows. That embedding is what lets
// the LM and DI window frameworks host COD unchanged — raw stacked
// rows contribute exactly aᵀb to the product, block mass is
// ‖a‖²+‖b‖², and merges concatenate row pairs. Note the stacked
// output does NOT satisfy FD's covariance guarantee for the stacked
// matrix (orthogonal streams shrink to nothing); consumers must judge
// it by the AMM product metric.
type COD struct {
	ell   int // sketch size: max rows kept per side after a shrink
	dA    int
	dB    int
	bfac  int     // working-buffer factor b ≥ 1
	alpha float64 // shrink aggressiveness α ∈ (0,1]
	m     int     // working-buffer capacity b·ℓ

	bufX *mat.Dense // aligned working buffers; grow lazily ℓ → b·ℓ
	bufY *mat.Dense
	used int

	spareX *mat.Dense // shrink rebuild targets, reused across calls
	spareY *mat.Dense

	shrinks   uint64
	lastAmort float64

	// delta accumulates the δ charged by every shrink so far: the
	// product estimate's spectral error ‖AᵀB − XᵀY‖₂ is at most Σδ.
	delta float64

	tr *trace.Tracer
}

// NewCOD returns a co-occurring-directions co-sketch keeping at most
// ell row pairs over side dimensions dA and dB, with the classic
// shrink-on-full cadence. It panics unless ell ≥ 2, dA ≥ 1, dB ≥ 1.
func NewCOD(ell, dA, dB int) *COD {
	return NewCODOpts(ell, dA, dB, FDOpts{})
}

// NewCODOpts returns a COD co-sketch with the FastFD buffer
// discipline applied to both sides: o.Buffer widens the working
// buffers to b·ℓ row pairs between shrinks and o.Alpha tunes the cut
// depth. The zero FDOpts selects the classic cadence.
func NewCODOpts(ell, dA, dB int, o FDOpts) *COD {
	if ell < 2 {
		panic(fmt.Sprintf("stream: COD needs ell ≥ 2, got %d", ell))
	}
	if dA < 1 || dB < 1 {
		panic(fmt.Sprintf("stream: COD needs dA ≥ 1 and dB ≥ 1, got %d and %d", dA, dB))
	}
	o = o.Normalize()
	return &COD{
		ell:   ell,
		dA:    dA,
		dB:    dB,
		bfac:  o.Buffer,
		alpha: o.Alpha,
		m:     o.Buffer * ell,
		bufX:  mat.NewDense(ell, dA),
		bufY:  mat.NewDense(ell, dB),
	}
}

// SetTracer attaches a tracer; each shrink emits an fd_shrink span
// under the COD name.
func (c *COD) SetTracer(tr *trace.Tracer) { c.tr = tr }

// D returns the stacked row dimension dA+dB the Sketch interface
// operates on.
func (c *COD) D() int { return c.dA + c.dB }

// DimA returns the A-side row dimension.
func (c *COD) DimA() int { return c.dA }

// DimB returns the B-side row dimension.
func (c *COD) DimB() int { return c.dB }

// Ell returns the configured sketch size.
func (c *COD) Ell() int { return c.ell }

// Used reports the number of occupied row pairs.
func (c *COD) Used() int { return c.used }

// Shrinks reports the number of shrink steps performed.
func (c *COD) Shrinks() uint64 { return c.shrinks }

// Amortization reports the last shrink's amortization factor (like
// FD's): row pairs absorbed per shrink relative to the classic
// cadence with the same survivor count.
func (c *COD) Amortization() float64 { return c.lastAmort }

// Delta reports the cumulative shrink charge Σδ since creation: a
// certified upper bound on ‖AᵀB − XᵀY‖₂ for the rows fed so far. Not
// persisted across snapshots.
func (c *COD) Delta() float64 { return c.delta }

// BufferFactor returns the working-buffer factor b.
func (c *COD) BufferFactor() int { return c.bfac }

// Alpha returns the shrink aggressiveness α.
func (c *COD) Alpha() float64 { return c.alpha }

// ensureRoom makes at least one row pair free: grow the lazy buffers
// toward b·ℓ first, shrink once the full working capacity is occupied.
func (c *COD) ensureRoom() {
	if c.used < c.bufX.Rows() {
		return
	}
	if c.bufX.Rows() < c.m {
		c.grow()
		return
	}
	c.shrink()
}

// grow doubles both buffer capacities (capped at b·ℓ), preserving the
// occupied row pairs.
func (c *COD) grow() {
	rows := c.bufX.Rows() * 2
	if rows > c.m {
		rows = c.m
	}
	nx := mat.NewDense(rows, c.dA)
	copy(nx.Data(), c.bufX.Data()[:c.used*c.dA])
	ny := mat.NewDense(rows, c.dB)
	copy(ny.Data(), c.bufY.Data()[:c.used*c.dB])
	c.bufX, c.bufY = nx, ny
}

// UpdatePaired inserts one row pair (a from the A stream, b from the
// B stream), shrinking first if the working buffers are full.
func (c *COD) UpdatePaired(a, b []float64) {
	if len(a) != c.dA || len(b) != c.dB {
		panic(fmt.Sprintf("stream: COD pair lengths (%d,%d), want (%d,%d)", len(a), len(b), c.dA, c.dB))
	}
	c.ensureRoom()
	copy(c.bufX.Row(c.used), a)
	copy(c.bufY.Row(c.used), b)
	c.used++
}

// Update inserts one stacked row [a|b] of length dA+dB (the Sketch
// interface the window frameworks drive).
func (c *COD) Update(row []float64) {
	if len(row) != c.dA+c.dB {
		panic(fmt.Sprintf("stream: COD stacked row length %d, want %d", len(row), c.dA+c.dB))
	}
	c.ensureRoom()
	copy(c.bufX.Row(c.used), row[:c.dA])
	copy(c.bufY.Row(c.used), row[c.dA:])
	c.used++
}

// UpdateBatch inserts stacked rows in order; identical to repeated
// Update calls (COD is deterministic), with the validation hoisted.
func (c *COD) UpdateBatch(rows [][]float64) {
	for i, r := range rows {
		if len(r) != c.dA+c.dB {
			panic(fmt.Sprintf("stream: COD batch row %d length %d, want %d", i, len(r), c.dA+c.dB))
		}
	}
	for _, r := range rows {
		c.ensureRoom()
		copy(c.bufX.Row(c.used), r[:c.dA])
		copy(c.bufY.Row(c.used), r[c.dA:])
		c.used++
	}
}

// updateDensePair bulk-inserts aligned row blocks (the merge path).
func (c *COD) updateDensePair(x, y *mat.Dense) {
	total := x.Rows()
	for i := 0; i < total; i++ {
		c.ensureRoom()
		copy(c.bufX.Row(c.used), x.Row(i))
		copy(c.bufY.Row(c.used), y.Row(i))
		c.used++
	}
}

// shrinkIdx returns the (1-based) index of the product singular value
// charged as δ — the same α-interpolation FD uses, from ℓ (cut as
// little as possible) down to ⌈ℓ/2⌉ (classic halving). Survivors
// number at most shrinkIdx−1, so a shrink always frees buffer rows.
func (c *COD) shrinkIdx() int {
	half := (c.ell + 1) / 2
	return c.ell - int(math.Floor(c.alpha*float64(c.ell-half)))
}

// shrink rotates both buffers into the singular basis of the current
// product estimate XᵀY and soft-thresholds the product spectrum by
// δ = σ_{idx(α)}; see the type comment for the algebra.
func (c *COD) shrink() {
	n := c.used
	if n == 0 {
		return
	}
	c.shrinks++
	sp := c.tr.Start("COD", trace.KindFDShrink, 0)

	x := mat.NewDenseData(n, c.dA, c.bufX.Data()[:n*c.dA])
	y := mat.NewDenseData(n, c.dB, c.bufY.Data()[:n*c.dB])

	qx := mat.QR(x.T()) // Qx: dA×kx, Rx: kx×n
	qy := mat.QR(y.T()) // Qy: dB×ky, Ry: ky×n
	kx, ky := qx.Q.Cols(), qy.Q.Cols()

	// M = Rx·Ryᵀ carries the full product: XᵀY = Qx·M·Qyᵀ.
	mm := mat.NewDense(kx, ky)
	mat.MulTo(mm, qx.R, qy.R.T())
	sv := mat.SVD(mm) // U kx×r, S desc, V ky×r

	delta := shrinkLambda(sv.S, c.shrinkIdx())
	c.delta += delta
	kept := 0
	for kept < len(sv.S) && sv.S[kept] > delta && sv.S[kept] > 0 {
		kept++
	}

	if c.spareX == nil || c.spareX.Rows() != c.bufX.Rows() {
		c.spareX = mat.NewDense(c.bufX.Rows(), c.dA)
		c.spareY = mat.NewDense(c.bufX.Rows(), c.dB)
	}
	if kept > 0 {
		// X' = Σ̃^{1/2}·Uᵀ·Qxᵀ, written straight into the spare buffer,
		// then the Y side with V and Qy.
		ut := mat.NewDense(kept, kx)
		mat.TransposeInto(ut, sv.U, kept)
		dstX := mat.NewDenseData(kept, c.dA, c.spareX.Data()[:kept*c.dA])
		mat.MulTo(dstX, ut, qx.Q.T())
		vt := mat.NewDense(kept, ky)
		mat.TransposeInto(vt, sv.V, kept)
		dstY := mat.NewDenseData(kept, c.dB, c.spareY.Data()[:kept*c.dB])
		mat.MulTo(dstY, vt, qy.Q.T())
		for k := 0; k < kept; k++ {
			scale := math.Sqrt(sv.S[k] - delta)
			rx := dstX.Row(k)
			for j := range rx {
				rx[j] *= scale
			}
			ry := dstY.Row(k)
			for j := range ry {
				ry[j] *= scale
			}
		}
	}
	zeroTail(c.spareX, kept, c.dA)
	zeroTail(c.spareY, kept, c.dB)
	c.bufX, c.spareX = c.spareX, c.bufX
	c.bufY, c.spareY = c.spareY, c.bufY
	c.used = kept
	c.lastAmort = float64(n-kept) / float64(c.ell-kept)
	if sp.Active() {
		sp.EndNote(float64(n), float64(kept),
			fmt.Sprintf("occ=%d/%d delta=%.3g b=%d alpha=%g", n, c.m, delta, c.bfac, c.alpha))
	}
}

// Matrix returns the occupied row pairs as stacked rows [X|Y] of
// width dA+dB — the Sketch-interface answer the window frameworks
// concatenate and merge. Product recovers the AᵀB estimate from it.
func (c *COD) Matrix() *mat.Dense {
	out := mat.NewDense(c.used, c.dA+c.dB)
	for i := 0; i < c.used; i++ {
		row := out.Row(i)
		copy(row[:c.dA], c.bufX.Row(i))
		copy(row[c.dA:], c.bufY.Row(i))
	}
	return out
}

// Product returns the current AᵀB estimate XᵀY (dA×dB).
func (c *COD) Product() *mat.Dense {
	x := mat.NewDenseData(c.used, c.dA, c.bufX.Data()[:c.used*c.dA])
	y := mat.NewDenseData(c.used, c.dB, c.bufY.Data()[:c.used*c.dB])
	p := mat.NewDense(c.dA, c.dB)
	if c.used > 0 {
		mat.MulTo(p, x.T(), y)
	}
	return p
}

// RowsStored reports the sketch size ℓ (row pairs), the paper's
// space-accounting measure; the widened working buffer is an
// implementation detail exposed via Stats as buffer_cap.
func (c *COD) RowsStored() int { return c.ell }

// Stats exposes the co-sketch's internals for instrumentation.
func (c *COD) Stats() map[string]float64 {
	return map[string]float64{
		"ell":           float64(c.ell),
		"d_a":           float64(c.dA),
		"d_b":           float64(c.dB),
		"used":          float64(c.used),
		"headroom":      float64(c.m - c.used),
		"shrinks":       float64(c.shrinks),
		"buffer_cap":    float64(c.m),
		"buffer_factor": float64(c.bfac),
		"alpha":         c.alpha,
		"amortization":  c.lastAmort,
		"delta":         c.delta,
	}
}

// Merge absorbs other (a *COD over the same side dimensions) by
// feeding its aligned row pairs through the bulk path; the COD
// analysis makes the merge error- and size-preserving, which is what
// the LM lift relies on. Other is read, never modified.
func (c *COD) Merge(other Mergeable) {
	o, ok := other.(*COD)
	if !ok {
		panic(fmt.Sprintf("stream: COD.Merge with %T", other))
	}
	if o.dA != c.dA || o.dB != c.dB {
		panic(fmt.Sprintf("stream: COD.Merge dims (%d,%d) vs (%d,%d)", o.dA, o.dB, c.dA, c.dB))
	}
	if o.used == 0 {
		return
	}
	x := mat.NewDenseData(o.used, o.dA, o.bufX.Data()[:o.used*o.dA])
	y := mat.NewDenseData(o.used, o.dB, o.bufY.Data()[:o.used*o.dB])
	c.updateDensePair(x, y)
}

// CloneEmpty returns a fresh COD with the same ℓ, side dimensions,
// and buffer discipline.
func (c *COD) CloneEmpty() Mergeable {
	return NewCODOpts(c.ell, c.dA, c.dB, FDOpts{Buffer: c.bfac, Alpha: c.alpha})
}

var _ Mergeable = (*COD)(nil)
