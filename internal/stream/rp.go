package stream

import (
	"fmt"
	"math"
	"math/rand"

	"swsketch/internal/mat"
)

// RP is the random-projection sketch of Appendix A: B = R·A where R is
// an ℓ×n matrix of independent ±1/√ℓ entries, computed one row at a
// time as B += r·aᵢ with a fresh random column r per stream row. With
// ℓ = O(d/ε²) it achieves covariance error ε with high probability.
//
// RP is mergeable: the sum of two sketches built with independent
// random columns is exactly the projection of the concatenated stream,
// so Merge is entry-wise addition with no size or error growth.
type RP struct {
	ell int
	d   int
	b   *mat.Dense
	rng *rand.Rand
	inv float64 // 1/√ℓ
}

// NewRP returns a random-projection sketch with ℓ rows over dimension
// d, seeded deterministically from seed. It panics unless ℓ ≥ 1, d ≥ 1.
func NewRP(ell, d int, seed int64) *RP {
	if ell < 1 || d < 1 {
		panic(fmt.Sprintf("stream: RP needs ell ≥ 1 and d ≥ 1, got %d, %d", ell, d))
	}
	return &RP{
		ell: ell,
		d:   d,
		b:   mat.NewDense(ell, d),
		rng: rand.New(rand.NewSource(seed)),
		inv: 1 / math.Sqrt(float64(ell)),
	}
}

// Update folds one row into the projection: B += r·row.
func (p *RP) Update(row []float64) {
	if len(row) != p.d {
		panic(fmt.Sprintf("stream: RP row length %d, want %d", len(row), p.d))
	}
	for i := 0; i < p.ell; i++ {
		r := p.inv
		if p.rng.Int63()&1 == 0 {
			r = -r
		}
		bi := p.b.Row(i)
		for j, v := range row {
			bi[j] += r * v
		}
	}
}

// UpdateBatch folds rows in order. The sign stream is consumed in the
// same order as repeated Update calls, so the result is identical.
func (p *RP) UpdateBatch(rows [][]float64) {
	for _, r := range rows {
		p.Update(r)
	}
}

// Matrix returns a copy of the ℓ×d projection.
func (p *RP) Matrix() *mat.Dense { return p.b.Clone() }

// RowsStored reports ℓ.
func (p *RP) RowsStored() int { return p.ell }

// Merge adds other's projection into the receiver.
func (p *RP) Merge(other Mergeable) {
	o, ok := other.(*RP)
	if !ok {
		panic(fmt.Sprintf("stream: RP.Merge with %T", other))
	}
	if o.ell != p.ell || o.d != p.d {
		panic(fmt.Sprintf("stream: RP.Merge shape %d×%d vs %d×%d", o.ell, o.d, p.ell, p.d))
	}
	p.b.Add(o.b)
}

// CloneEmpty returns a fresh RP with the same shape and an independent
// random stream.
func (p *RP) CloneEmpty() Mergeable { return NewRP(p.ell, p.d, p.rng.Int63()) }

var _ Mergeable = (*RP)(nil)
