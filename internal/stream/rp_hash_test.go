package stream

import (
	"math/rand"
	"testing"

	"swsketch/internal/mat"
)

func TestNewRPValidation(t *testing.T) {
	for _, c := range [][2]int{{0, 5}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for ell=%d d=%d", c[0], c[1])
				}
			}()
			NewRP(c[0], c[1], 1)
		}()
	}
}

func TestRPRowLengthPanics(t *testing.T) {
	p := NewRP(4, 3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Update([]float64{1})
}

func TestRPApproximatesGram(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := 8
	p := NewRP(256, d, 11)
	a := feed(t, p, rng, 400, d)
	// RP with ℓ=256 should get small relative error on random data.
	if e := covaErr(a, p.Matrix()); e > 0.3 {
		t.Fatalf("RP error = %v, too large", e)
	}
}

func TestRPErrorShrinksWithEll(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n, d := 400, 6
	a := mat.NewDense(n, d)
	for i := 0; i < n; i++ {
		copy(a.Row(i), randRow(rng, d))
	}
	errAt := func(ell int) float64 {
		// Average over a few seeds to smooth randomness.
		var sum float64
		for s := int64(0); s < 5; s++ {
			p := NewRP(ell, d, 100+s)
			for i := 0; i < n; i++ {
				p.Update(a.Row(i))
			}
			sum += covaErr(a, p.Matrix())
		}
		return sum / 5
	}
	small, large := errAt(16), errAt(256)
	if large > small {
		t.Fatalf("RP error did not shrink with ell: ℓ=16→%v, ℓ=256→%v", small, large)
	}
}

func TestRPMergeEquivalentToConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := 6
	p1, p2 := NewRP(128, d, 20), NewRP(128, d, 21)
	a1 := feed(t, p1, rng, 200, d)
	a2 := feed(t, p2, rng, 200, d)
	p1.Merge(p2)
	a := mat.Stack(a1, a2)
	if e := covaErr(a, p1.Matrix()); e > 0.5 {
		t.Fatalf("merged RP error = %v", e)
	}
	if p1.RowsStored() != 128 {
		t.Fatalf("merge changed size: %d", p1.RowsStored())
	}
}

func TestRPMergeMismatchPanics(t *testing.T) {
	p := NewRP(4, 3, 1)
	for _, bad := range []Mergeable{NewFD(4, 3), NewRP(8, 3, 2), NewRP(4, 5, 3)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic merging %T", bad)
				}
			}()
			p.Merge(bad)
		}()
	}
}

func TestRPCloneEmpty(t *testing.T) {
	p := NewRP(4, 3, 1)
	p.Update([]float64{1, 2, 3})
	c := p.CloneEmpty().(*RP)
	if c.Matrix().FrobeniusSq() != 0 {
		t.Fatal("CloneEmpty not empty")
	}
	if c.RowsStored() != 4 {
		t.Fatalf("CloneEmpty size = %d", c.RowsStored())
	}
}

func TestHashValidation(t *testing.T) {
	fam := NewHashFamily(1)
	for _, c := range [][2]int{{0, 5}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for ell=%d d=%d", c[0], c[1])
				}
			}()
			fam.NewSketch(c[0], c[1])
		}()
	}
}

func TestHashRowLengthPanics(t *testing.T) {
	h := NewHashFamily(1).NewSketch(4, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Update([]float64{1})
}

func TestHashApproximatesGram(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := 6
	h := NewHashFamily(99).NewSketch(512, d)
	a := feed(t, h, rng, 400, d)
	if e := covaErr(a, h.Matrix()); e > 0.35 {
		t.Fatalf("Hash error = %v, too large", e)
	}
}

func TestHashMergeEquivalentToConcatenation(t *testing.T) {
	// Two sketches from the same family over disjoint sub-streams,
	// merged, must equal one sketch over the concatenated stream fed
	// through a family with identical seed and identifier sequence.
	rng := rand.New(rand.NewSource(15))
	d := 5
	n := 100
	rows := make([][]float64, 2*n)
	for i := range rows {
		rows[i] = randRow(rng, d)
	}

	famA := NewHashFamily(7)
	h1 := famA.NewSketch(64, d)
	h2 := famA.NewSketch(64, d)
	for i := 0; i < n; i++ {
		h1.Update(rows[i])
	}
	for i := n; i < 2*n; i++ {
		h2.Update(rows[i])
	}
	h1.Merge(h2)

	famB := NewHashFamily(7)
	whole := famB.NewSketch(64, d)
	for _, r := range rows {
		whole.Update(r)
	}
	if !h1.Matrix().Equal(whole.Matrix(), 1e-12) {
		t.Fatal("Hash merge is not exactly the concatenated sketch")
	}
}

func TestHashMergeAcrossFamiliesPanics(t *testing.T) {
	h1 := NewHashFamily(1).NewSketch(4, 3)
	h2 := NewHashFamily(2).NewSketch(4, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h1.Merge(h2)
}

func TestHashMergeShapeMismatchPanics(t *testing.T) {
	fam := NewHashFamily(1)
	h1 := fam.NewSketch(4, 3)
	h2 := fam.NewSketch(8, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h1.Merge(h2)
}

func TestHashCloneEmptySharesFamily(t *testing.T) {
	fam := NewHashFamily(3)
	h := fam.NewSketch(4, 3)
	c := h.CloneEmpty().(*Hash)
	if c.fam != fam {
		t.Fatal("CloneEmpty must share the family")
	}
}

func TestSplitmix64Distribution(t *testing.T) {
	// Crude sanity: bucket assignment over 16 buckets is roughly uniform.
	counts := make([]int, 16)
	n := 16000
	for i := 0; i < n; i++ {
		counts[splitmix64(uint64(i))%16]++
	}
	for b, c := range counts {
		if c < n/16/2 || c > n/16*2 {
			t.Fatalf("bucket %d has %d of %d items", b, c, n)
		}
	}
}
