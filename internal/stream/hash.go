package stream

import (
	"fmt"

	"swsketch/internal/mat"
)

// HashFamily issues stream-wide row identifiers and the shared hash
// functions (h, g) that make Hash sketches mergeable. Two Hash
// sketches are mergeable by addition exactly when they hash disjoint
// row identifiers with the same functions, so every sketch drawn from
// one family pulls identifiers from the family's shared counter.
type HashFamily struct {
	seed uint64
	next uint64
}

// NewHashFamily returns a family keyed by seed.
func NewHashFamily(seed uint64) *HashFamily {
	return &HashFamily{seed: seed}
}

// NewSketch returns a fresh Hash sketch with ℓ buckets over dimension
// d, drawing row identifiers from this family.
func (f *HashFamily) NewSketch(ell, d int) *Hash {
	if ell < 1 || d < 1 {
		panic(fmt.Sprintf("stream: Hash needs ell ≥ 1 and d ≥ 1, got %d, %d", ell, d))
	}
	return &Hash{fam: f, ell: ell, d: d, b: mat.NewDense(ell, d)}
}

// splitmix64 is the finaliser of SplitMix64 — a fast, well-distributed
// 64-bit mixer used to derive h(i) and g(i) from the row identifier.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash is the feature-hashing ("hashing trick") sketch of Appendix A:
// B = S·A where S is a random ℓ×n sign matrix with one non-zero per
// column, applied as b_{h(i)} += g(i)·aᵢ. With ℓ = O(d²/ε²) buckets it
// achieves covariance error ε with high probability; its update cost
// is O(d), the cheapest of all the streaming sketches.
type Hash struct {
	fam *HashFamily
	ell int
	d   int
	b   *mat.Dense
}

// Update hashes one row into its bucket with a random sign.
func (s *Hash) Update(row []float64) {
	if len(row) != s.d {
		panic(fmt.Sprintf("stream: Hash row length %d, want %d", len(row), s.d))
	}
	id := s.fam.next
	s.fam.next++
	hv := splitmix64(id ^ s.fam.seed)
	bucket := int(hv % uint64(s.ell))
	sign := 1.0
	if splitmix64(hv)&1 == 0 {
		sign = -1
	}
	dst := s.b.Row(bucket)
	for j, v := range row {
		dst[j] += sign * v
	}
}

// UpdateBatch hashes rows in order, validating lengths once up front;
// row identifiers advance exactly as under repeated Update calls.
func (s *Hash) UpdateBatch(rows [][]float64) {
	for i, r := range rows {
		if len(r) != s.d {
			panic(fmt.Sprintf("stream: Hash batch row %d length %d, want %d", i, len(r), s.d))
		}
	}
	for _, r := range rows {
		id := s.fam.next
		s.fam.next++
		hv := splitmix64(id ^ s.fam.seed)
		bucket := int(hv % uint64(s.ell))
		sign := 1.0
		if splitmix64(hv)&1 == 0 {
			sign = -1
		}
		dst := s.b.Row(bucket)
		for j, v := range r {
			dst[j] += sign * v
		}
	}
}

// Matrix returns a copy of the ℓ×d bucket matrix.
func (s *Hash) Matrix() *mat.Dense { return s.b.Clone() }

// RowsStored reports ℓ.
func (s *Hash) RowsStored() int { return s.ell }

// Merge adds other's buckets into the receiver. Both sketches must
// come from the same family and have the same shape.
func (s *Hash) Merge(other Mergeable) {
	o, ok := other.(*Hash)
	if !ok {
		panic(fmt.Sprintf("stream: Hash.Merge with %T", other))
	}
	if o.fam != s.fam {
		panic("stream: Hash.Merge across families")
	}
	if o.ell != s.ell || o.d != s.d {
		panic(fmt.Sprintf("stream: Hash.Merge shape %d×%d vs %d×%d", o.ell, o.d, s.ell, s.d))
	}
	s.b.Add(o.b)
}

// CloneEmpty returns a fresh sketch from the same family.
func (s *Hash) CloneEmpty() Mergeable { return s.fam.NewSketch(s.ell, s.d) }

var _ Mergeable = (*Hash)(nil)
