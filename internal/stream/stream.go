// Package stream implements the streaming (unbounded, row-update)
// matrix sketches of Section 3 and Appendix A of the paper:
// FrequentDirections, random projection, feature hashing, and
// norm-proportional row sampling via priorities. These are the
// building blocks embedded into the sliding-window frameworks in
// package core.
package stream

import "swsketch/internal/mat"

// Sketch is a streaming matrix sketch over a row-update stream. A
// sketch observes rows of an implicit matrix A ∈ R^{n×d} one at a time
// and can at any point produce an approximation B ∈ R^{ℓ×d} with small
// covariance error ‖AᵀA − BᵀB‖₂ / ‖A‖²_F.
type Sketch interface {
	// Update feeds one row (length d) into the sketch. Implementations
	// must not retain the slice.
	Update(row []float64)
	// UpdateBatch feeds rows in order, equivalent to calling Update on
	// each (including any internal randomness: the rng consumption
	// order is preserved) but letting the sketch amortise per-row
	// bookkeeping across the batch. Implementations must not retain
	// the slices.
	UpdateBatch(rows [][]float64)
	// Matrix materialises the current approximation B. The returned
	// matrix is owned by the caller.
	Matrix() *mat.Dense
	// RowsStored reports the current size of the sketch in rows, the
	// paper's space measure.
	RowsStored() int
}

// Mergeable is a sketch that supports the mergeability property of
// Section 6.1: two sketches of matrices A₁ and A₂ combine into a
// sketch of [A₁; A₂] without growing in size or error.
type Mergeable interface {
	Sketch
	// Merge absorbs other's content into the receiver. The argument
	// must be a sketch of the same concrete type and configuration;
	// it is read but never modified, so one block sketch can be merged
	// into many query-time accumulators.
	Merge(other Mergeable)
	// CloneEmpty returns a fresh, empty sketch with the same
	// configuration (used by the LM framework to open new blocks).
	CloneEmpty() Mergeable
}

// Factory constructs fresh streaming sketches for a given dimension;
// the frameworks in package core use factories to populate blocks.
type Factory func(d int) Sketch

// MergeableFactory constructs fresh mergeable sketches.
type MergeableFactory func(d int) Mergeable
