# Development entry points. Everything is plain `go` underneath; the
# targets just encode the parameters used for the shipped artifacts.

GO ?= go

.PHONY: all build test race cover bench bench-fd bench-dsfd bench-load bench-hh conformance fuzz verify results examples clean check doclint linkcheck docs

all: build test

# Pre-merge gate: compile + vet, the full test suite, and the suite
# again under the race detector (the concurrent wrappers and the
# parallel compute kernels are only honest under -race).
check: build test race doclint linkcheck

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One testing.B benchmark per paper table/figure plus the substrate
# ablations; writes the artifact shipped as bench_output.txt.
bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# FastFD ingest artifact: sweeps (buffer, alpha) at ℓ∈{64,256}, gates
# the default config (b=2, α=1) at 1.2× the committed baseline, then
# refreshes BENCH_fd.json in place.
bench-fd:
	$(GO) run ./cmd/swbench -fd-baseline BENCH_fd.json -fd-out BENCH_fd.json fd

# DS-FD head-to-head artifact: DS-FD vs LM-FD vs DI-FD at matched ε on
# the fig6 skewed PAMAP workload; fails if DS-FD breaches its N·R/ℓ
# guarantee or needs more space than LM-FD. Refreshes BENCH_dsfd.json.
bench-dsfd:
	$(GO) run ./cmd/swbench -dsfd-out BENCH_dsfd.json dsfd

# Ingest-plane load artifact: the three wire generations against a
# Zipf-skewed tenant fleet, soft-gated against the committed baseline,
# refreshing BENCH_load.json in place.
bench-load:
	$(GO) run ./cmd/swbench -load-baseline BENCH_load.json -load-out BENCH_load.json load

# Hot-key observability artifact: the sliding count-min top-K sidecar
# judged against exact per-tenant counts from a Zipf load run (recall
# and ε·N bound are hard gates), plus its ingest-path cost.
# Refreshes BENCH_hh.json.
bench-hh:
	$(GO) run ./cmd/swbench -hh-out BENCH_hh.json hh

# Cross-framework conformance suite under the race detector: every
# registered framework through the shared contract table.
conformance:
	$(GO) test -race -run 'TestContract|TestRegistryCoverage' ./internal/core ./internal/conformance

# Short fuzzing pass over the stateful structures.
fuzz:
	$(GO) test -fuzz FuzzEstimate -fuzztime 30s ./internal/eh
	$(GO) test -fuzz FuzzLMFD -fuzztime 30s ./internal/core
	$(GO) test -fuzz FuzzSWOR -fuzztime 30s ./internal/core
	$(GO) test -fuzz FuzzDSFDUnmarshal -fuzztime 30s ./internal/core
	$(GO) test -fuzz FuzzSnapshotDecode -fuzztime 30s ./internal/obs/hh

# CI gate: re-runs the paper's qualitative shape checks; non-zero exit
# on any DIFF.
verify:
	$(GO) run ./cmd/swbench verify

# Regenerates every table and figure into results_*.txt.
results:
	$(GO) run ./cmd/swbench all > results_all.txt
	$(GO) run ./cmd/swbench ablation > results_ablation.txt
	$(GO) run ./cmd/swbench drift > results_drift.txt
	$(GO) run ./cmd/swbench projerr > results_projerr.txt
	$(GO) run ./cmd/swbench winsweep > results_winsweep.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pca_anomaly
	$(GO) run ./examples/textstream
	$(GO) run ./examples/activity
	$(GO) run ./examples/checkpoint
	$(GO) run ./examples/distributed
	$(GO) run ./examples/multitenant
	$(GO) run ./examples/fastfd
	$(GO) run ./examples/walrecovery

# Documentation gates (both run in CI). doclint fails on undocumented
# exported identifiers anywhere in the module; linkcheck fails on
# broken local links/anchors in the tracked markdown.
doclint:
	$(GO) run ./cmd/doclint ./...

linkcheck:
	$(GO) run ./cmd/linkcheck README.md DESIGN.md ALGORITHMS.md EXPERIMENTS.md docs/API.md docs/QUERIES.md

docs: doclint linkcheck

clean:
	$(GO) clean ./...
