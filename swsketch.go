// Package swsketch is a Go implementation of "Matrix Sketching Over
// Sliding Windows" (Wei, Liu, Li, Shang, Du, Wen — SIGMOD 2016): data
// structures that continuously maintain a small approximation B of the
// matrix A formed by the rows inside a sliding window, with bounded
// covariance error ‖AᵀA − BᵀB‖₂/‖A‖²_F.
//
// Three families of sliding-window sketches are provided:
//
//   - Sampling (NewSWR, NewSWOR, NewSWORAll): norm-proportional row
//     samples maintained with priority-sampling candidate queues. Work
//     on sequence- and time-based windows; the answers are rescaled
//     rows of A itself (interpretable).
//   - Logarithmic Method (NewLMFD, NewLMHash): converts a mergeable
//     streaming sketch into a sliding-window sketch via exponentially
//     growing block levels. Works on both window types; the paper's
//     recommended general-purpose choice is LM-FD.
//   - Dyadic Interval (NewDIFD, NewDIRP, NewDIHash): converts an
//     arbitrary streaming sketch into a sequence-window sketch via a
//     dyadic block hierarchy; the most space-efficient option when the
//     squared-norm ratio R of the window is small.
//   - Dump-Snapshot FD (NewDSFD): a follow-up design maintaining one
//     FrequentDirections sketch per frame with truncated prefix
//     snapshots, answering sequence-window queries by subtraction with
//     absolute covariance error within N·R/ℓ.
//   - Windowed AMM (NewLMAMM, NewDIAMM, AutoAMM): sketches over paired
//     streams (aᵢ, bᵢ) answering approximate matrix products AᵀB for
//     the rows inside the window, built by lifting the co-occurring
//     directions co-sketch (NewCOD) through the LM and DI frameworks.
//
// All sketches implement WindowSketch: push timestamped rows with
// Update (for sequence windows, use the stream index as timestamp) and
// obtain the current window's approximation with Query.
//
// This root package is a facade over the implementation packages in
// internal/; it re-exports everything a downstream user needs — the
// sketches, the window specifications, the dense linear algebra used
// to consume the results, the streaming sketches they are built from,
// and generators for the paper's evaluation datasets.
package swsketch

import (
	"io"
	"log/slog"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/data"
	"swsketch/internal/dist"
	"swsketch/internal/mat"
	"swsketch/internal/obs"
	"swsketch/internal/obs/audit"
	"swsketch/internal/pca"
	"swsketch/internal/registry"
	"swsketch/internal/serve"
	"swsketch/internal/stream"
	"swsketch/internal/trace"
	"swsketch/internal/window"
)

// WindowSketch is a continuously maintained matrix sketch over a
// sliding window. See internal/core for the contract details.
type WindowSketch = core.WindowSketch

// Spec describes a sliding window (sequence- or time-based).
type Spec = window.Spec

// Seq returns a sequence-based window of the n most recent rows.
func Seq(n int) Spec { return window.Seq(n) }

// TimeSpan returns a time-based window covering (t−delta, t].
func TimeSpan(delta float64) Spec { return window.TimeSpan(delta) }

// ExactWindow tracks a window exactly (rows, Gram matrix, Frobenius
// mass) — the ground-truth oracle used to measure covariance error.
type ExactWindow = window.Exact

// NewExactWindow returns an exact window tracker for dimension d.
func NewExactWindow(spec Spec, d int) *ExactWindow { return window.NewExact(spec, d) }

// NormTracker approximates the window's ‖A‖²_F; see NewEHNorms for the
// sub-linear exponential-histogram implementation.
type NormTracker = window.NormTracker

// NewEHNorms returns an exponential-histogram Frobenius-mass tracker
// with relative error ≈ eps.
func NewEHNorms(spec Spec, eps float64) NormTracker { return window.NewEHNorms(spec, eps) }

// SWR is the sampling-with-replacement sliding-window sketch
// (Algorithm 5.1 of the paper).
type SWR = core.SWR

// NewSWR returns an SWR sketch sampling ell rows of dimension d.
func NewSWR(spec Spec, ell, d int, seed int64) *SWR { return core.NewSWR(spec, ell, d, seed) }

// SWOR is the sampling-without-replacement sketch (Algorithm 5.2); it
// also implements the SWOR-ALL variant.
type SWOR = core.SWOR

// NewSWOR returns a SWOR sketch sampling ell rows of dimension d.
func NewSWOR(spec Spec, ell, d int, seed int64) *SWOR { return core.NewSWOR(spec, ell, d, seed) }

// NewSWORAll returns the SWOR-ALL variant, which answers with every
// candidate row.
func NewSWORAll(spec Spec, ell, d int, seed int64) *SWOR { return core.NewSWORAll(spec, ell, d, seed) }

// LM is the Logarithmic Method framework (Section 6).
type LM = core.LM

// NewLMFD returns LM over FrequentDirections blocks — the paper's
// LM-FD, its recommended general-purpose sliding-window sketch. ell is
// the per-block sketch size, b the blocks per level (≈ 8/ε).
func NewLMFD(spec Spec, d, ell, b int) *LM { return core.NewLMFD(spec, d, ell, b) }

// NewLMFDOpts returns LM-FD with FastFD ingest tuning applied to every
// block sketch; the zero FDOpts reproduces NewLMFD exactly.
func NewLMFDOpts(spec Spec, d, ell, b int, o FDOpts) *LM {
	return core.NewLMFDOpts(spec, d, ell, b, o)
}

// NewLMHash returns LM over feature-hashing blocks (Appendix A).
func NewLMHash(spec Spec, d, ell, b int, seed uint64) *LM {
	return core.NewLMHash(spec, d, ell, b, seed)
}

// DI is the Dyadic Interval framework (Section 7); sequence windows only.
type DI = core.DI

// DIConfig parameterises the Dyadic Interval framework.
type DIConfig = core.DIConfig

// NewDIFD returns DI over FrequentDirections — the paper's DI-FD, the
// most space-efficient sketch when the norm ratio R is small.
func NewDIFD(cfg DIConfig, d int) *DI { return core.NewDIFD(cfg, d) }

// NewDIFDOpts returns DI-FD with FastFD ingest tuning applied to every
// per-level sketch; the zero FDOpts reproduces NewDIFD exactly.
func NewDIFDOpts(cfg DIConfig, d int, o FDOpts) *DI { return core.NewDIFDOpts(cfg, d, o) }

// NewDIRP returns DI over random projections (Appendix A).
func NewDIRP(cfg DIConfig, d int, seed int64) *DI { return core.NewDIRP(cfg, d, seed) }

// NewDIHash returns DI over feature hashing (Appendix A).
func NewDIHash(cfg DIConfig, d int, seed uint64) *DI { return core.NewDIHash(cfg, d, seed) }

// DSFD is the dump-snapshot FrequentDirections sliding-window sketch
// (after "DS-FD: Matrix Sketching over Sliding Windows with Dump
// Snapshots"): one FrequentDirections sketch per frame, frozen when
// its accumulated shrink mass reaches half the error threshold
// θ = N·R/ℓ, with periodic truncated snapshots inside the active
// frame so a window cutoff mid-frame can be answered by subtraction.
// Sequence windows only; deterministic, so batch ingest and
// spill/restore are bit-exact.
type DSFD = core.DSFD

// DSFDConfig parameterises DS-FD: window length N, sketch size Ell,
// and an optional squared-row-norm bound R (zero = track adaptively).
type DSFDConfig = core.DSFDConfig

// NewDSFD returns a DS-FD sketch for rows of dimension d.
func NewDSFD(cfg DSFDConfig, d int) *DSFD { return core.NewDSFD(cfg, d) }

// COD is the co-occurring directions streaming co-sketch: aligned
// buffers X and Y maintained so that XᵀY ≈ AᵀB for a paired stream of
// row pairs (aᵢ, bᵢ), with certified spectral error ‖AᵀB − XᵀY‖₂
// bounded by the accumulated shrink charge (Delta). Mergeable, so it
// slots into the LM and DI frameworks as the block sketch behind the
// windowed AMM sketches below.
type COD = stream.COD

// NewCOD returns a COD co-sketch of at most ell row pairs with side
// widths dA and dB.
func NewCOD(ell, dA, dB int) *COD { return stream.NewCOD(ell, dA, dB) }

// NewCODOpts returns a COD co-sketch with FastFD ingest tuning; the
// zero FDOpts reproduces NewCOD exactly.
func NewCODOpts(ell, dA, dB int, o FDOpts) *COD { return stream.NewCODOpts(ell, dA, dB, o) }

// PairedWindowSketch is a sliding-window sketch over a paired stream
// (aᵢ, bᵢ): alongside the WindowSketch contract it answers windowed
// approximate matrix products AᵀB via AmmApproximation.
type PairedWindowSketch = core.PairedWindowSketch

// AMM is the windowed approximate-matrix-multiplication sketch: an LM
// or DI framework instance over COD co-sketch blocks, answering
// AᵀB ≈ XᵀY for the row pairs inside the sliding window.
type AMM = core.AMM

// NewLMAMM returns the Logarithmic Method over COD blocks — windowed
// AMM on sequence or time windows. ell is the per-block co-sketch
// size, b the blocks per level.
func NewLMAMM(spec Spec, dA, dB, ell, b int) *AMM { return core.NewLMAMM(spec, dA, dB, ell, b) }

// NewLMAMMOpts returns LM-AMM with FastFD ingest tuning applied to
// every COD block; the zero FDOpts reproduces NewLMAMM exactly.
func NewLMAMMOpts(spec Spec, dA, dB, ell, b int, o FDOpts) *AMM {
	return core.NewLMAMMOpts(spec, dA, dB, ell, b, o)
}

// NewDIAMM returns the Dyadic Interval framework over COD blocks —
// the space-efficient windowed AMM choice for sequence windows with a
// small norm ratio R.
func NewDIAMM(cfg DIConfig, dA, dB int) *AMM { return core.NewDIAMM(cfg, dA, dB) }

// NewDIAMMOpts returns DI-AMM with FastFD ingest tuning.
func NewDIAMMOpts(cfg DIConfig, dA, dB int, o FDOpts) *AMM {
	return core.NewDIAMMOpts(cfg, dA, dB, o)
}

// AutoAMM sizes an LM-AMM sketch for a target correlation error
// ‖AᵀB − XᵀY‖₂/(‖A‖_F·‖B‖_F) ≈ eps.
func AutoAMM(spec Spec, dA, dB int, eps float64) *AMM { return core.AutoAMM(spec, dA, dB, eps) }

// Best is the offline best-rank-k baseline (stores the window; not a
// sketch — provided as the error lower envelope).
type Best = core.Best

// NewBest returns the offline rank-k baseline.
func NewBest(spec Spec, k, d int) *Best { return core.NewBest(spec, k, d) }

// Concurrent wraps any WindowSketch for one-writer/many-reader use.
type Concurrent = core.Concurrent

// NewConcurrent wraps sk with a mutex.
func NewConcurrent(sk WindowSketch) *Concurrent { return core.NewConcurrent(sk) }

// Dense is the row-major dense matrix type used throughout.
type Dense = mat.Dense

// NewDense returns a zeroed r×c matrix.
func NewDense(r, c int) *Dense { return mat.NewDense(r, c) }

// FromRows builds a matrix from row slices (copied).
func FromRows(rows [][]float64) *Dense { return mat.FromRows(rows) }

// SVDResult holds a thin singular value decomposition.
type SVDResult = mat.SVDResult

// SVD computes a thin SVD via the Gram trick.
func SVD(a *Dense) SVDResult { return mat.SVD(a) }

// SingularValues returns the singular values of a in descending order.
func SingularValues(a *Dense) []float64 { return mat.SingularValues(a) }

// RankK returns the best rank-k approximation Σ_k·V_kᵀ of a.
func RankK(a *Dense, k int) *Dense { return mat.RankK(a, k) }

// CovarianceError returns ‖AᵀA − BᵀB‖₂/‖A‖²_F given A's Gram matrix
// and squared Frobenius mass.
func CovarianceError(gramA *Dense, froSqA float64, b *Dense) float64 {
	return mat.CovarianceError(gramA, froSqA, b)
}

// FD is the FrequentDirections streaming sketch (mergeable).
type FD = stream.FD

// NewFD returns a FrequentDirections sketch of at most ell rows.
func NewFD(ell, d int) *FD { return stream.NewFD(ell, d) }

// FDOpts configures the FastFD ingest hot path: Buffer widens the
// working buffer to b·ℓ rows so shrinks amortize (2 is the benchmarked
// recommendation), Alpha ∈ (0,1] tunes how deep each shrink cuts
// (1 = the classic halving). The zero value is the classic cadence;
// the covariance guarantee holds for every valid combination.
type FDOpts = stream.FDOpts

// NewFDOpts returns a FrequentDirections sketch with FastFD tuning.
func NewFDOpts(ell, d int, o FDOpts) *FD { return stream.NewFDOpts(ell, d, o) }

// StreamSketch is a streaming (unbounded) matrix sketch.
type StreamSketch = stream.Sketch

// Mergeable is a streaming sketch supporting error- and size-
// preserving merges (the LM framework's requirement).
type Mergeable = stream.Mergeable

// Dataset is a materialised row stream with timestamps.
type Dataset = data.Dataset

// Dataset generators reproducing the paper's evaluation data; see
// internal/data for the configuration details.
type (
	// SyntheticConfig parameterises the Appendix D random noisy matrix.
	SyntheticConfig = data.SyntheticConfig
	// BIBDConfig parameterises the constant-norm incidence stream.
	BIBDConfig = data.BIBDConfig
	// PAMAPConfig parameterises the heavy-tailed sensor stream.
	PAMAPConfig = data.PAMAPConfig
	// WikiConfig parameterises the bursty tf-idf document stream.
	WikiConfig = data.WikiConfig
	// RailConfig parameterises the Poisson-arrival cost stream.
	RailConfig = data.RailConfig
)

// Synthetic generates the Appendix D matrix A = SDU + N/ζ.
func Synthetic(cfg SyntheticConfig) *Dataset { return data.Synthetic(cfg) }

// BIBD generates a balanced-incomplete-block-design incidence stream.
func BIBD(cfg BIBDConfig) *Dataset { return data.BIBD(cfg) }

// PAMAP generates an activity-monitoring-like sensor stream.
func PAMAP(cfg PAMAPConfig) *Dataset { return data.PAMAP(cfg) }

// Wiki generates a tf-idf document stream with accelerating arrivals.
func Wiki(cfg WikiConfig) *Dataset { return data.Wiki(cfg) }

// Rail generates a sparse cost stream with Poisson arrivals.
func Rail(cfg RailConfig) *Dataset { return data.Rail(cfg) }

// PCA is the principal component analysis of a window approximation.
type PCA = pca.Result

// ComputePCA returns the top-k principal components of the
// approximation b; because the sketch bounds the covariance error,
// these approximate the window's true PCA (the paper's Section 1
// application).
func ComputePCA(b *Dense, k int) PCA { return pca.Compute(b, k) }

// ResidualEnergy returns the fraction of b's energy outside the
// subspace of the given PCA basis — the change-detection statistic.
func ResidualEnergy(b *Dense, basis PCA) float64 { return pca.ResidualEnergy(b, basis) }

// SubspaceDistance returns sin of the largest principal angle between
// two PCA bases.
func SubspaceDistance(a, b PCA) float64 { return pca.SubspaceDistance(a, b) }

// ChangeDetector implements reference-vs-test-window PCA change
// detection over sliding-window sketches.
type ChangeDetector = pca.Detector

// NewChangeDetector fixes a reference basis with k components; Test
// flags approximations whose residual energy exceeds threshold.
func NewChangeDetector(reference *Dense, k int, threshold float64) *ChangeDetector {
	return pca.NewDetector(reference, k, threshold)
}

// Unbounded adapts a streaming (whole-history) sketch to the
// WindowSketch interface — the baseline that motivates sliding
// windows: it cannot forget old regimes (see `swbench drift`).
type Unbounded = core.Unbounded

// NewUnboundedFD wraps a whole-history FrequentDirections sketch.
func NewUnboundedFD(ell, d int) *Unbounded { return core.NewUnboundedFD(ell, d) }

// NewUnboundedFDOpts wraps a whole-history FrequentDirections sketch
// with FastFD ingest tuning.
func NewUnboundedFDOpts(ell, d int, o FDOpts) *Unbounded {
	return core.NewUnboundedFDOpts(ell, d, o)
}

// Zero is the degenerate always-empty baseline (covariance error
// σ₁²/Σσᵢ²); any useful sketch must beat it.
type Zero = core.Zero

// NewZero returns the zero-answer baseline.
func NewZero(d int) *Zero { return core.NewZero(d) }

// NewLMRP returns LM over random-projection blocks (an extension: RP
// is mergeable by addition, though the paper only pairs it with DI).
func NewLMRP(spec Spec, d, ell, b int, seed int64) *LM {
	return core.NewLMRP(spec, d, ell, b, seed)
}

// SparseRow is a sparse vector (sorted indices + values) for O(nnz)
// ingest of high-dimensional sparse streams.
type SparseRow = mat.SparseRow

// NewSparseRow validates and wraps explicit indices and values (pass
// d ≤ 0 to skip the bound check).
func NewSparseRow(idx []int, val []float64, d int) SparseRow {
	return mat.NewSparseRow(idx, val, d)
}

// SparseFromDense extracts the non-zero entries of a dense row.
func SparseFromDense(row []float64) SparseRow { return mat.SparseFromDense(row) }

// SparseUpdater is a window sketch with a sparse ingest path
// (implemented by SWR, SWOR, LM, and DI).
type SparseUpdater = core.SparseUpdater

// ReadMatrixMarket loads a MatrixMarket coordinate file (the UFlorida
// collection format of the paper's BIBD and RAIL matrices) as a row
// stream.
func ReadMatrixMarket(name string, r io.Reader) (*Dataset, error) {
	return data.ReadMatrixMarket(name, r)
}

// ReadPAMAP loads the PAMAP .dat sensor format with the paper's
// preprocessing (drop timestamp/activity columns and any column with
// missing values).
func ReadPAMAP(name string, r io.Reader) (*Dataset, error) {
	return data.ReadPAMAP(name, r)
}

// ReadCSV loads a timestamp-prefixed CSV row stream (the format
// written by Dataset.WriteCSV).
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	return data.ReadCSV(name, r)
}

// Server exposes a sketch over HTTP (ingest, approximation, PCA,
// stats, snapshot, and optional metrics/pprof endpoints); see
// cmd/swserve for a ready binary and internal/serve for the route and
// error-envelope documentation.
type Server = serve.Server

// ServerOption configures a Server (WithMetrics, WithPprof,
// WithMaxBody, WithTrace, WithAudit, WithLogger).
type ServerOption = serve.Option

// NewServer wraps a sketch of dimension d for HTTP serving; mount
// Handler() on any mux.
func NewServer(sk WindowSketch, d int, opts ...ServerOption) *Server {
	return serve.NewServer(sk, d, opts...)
}

// WithMetrics instruments the server's sketch and routes into reg and
// mounts GET /metrics with the Prometheus text exposition.
func WithMetrics(reg *MetricsRegistry) ServerOption { return serve.WithMetrics(reg) }

// WithPprof mounts net/http/pprof under /debug/pprof/.
func WithPprof() ServerOption { return serve.WithPprof() }

// WithMaxBody caps request body sizes at n bytes (413 beyond it).
func WithMaxBody(n int64) ServerOption { return serve.WithMaxBody(n) }

// WithTrace attaches an event tracer to the server: the sketch's
// structural transitions and every request record into it, and GET
// /debug/trace serves the ring as JSONL.
func WithTrace(tr *Tracer) ServerOption { return serve.WithTrace(tr) }

// WithAudit attaches an online accuracy auditor: ingested rows are
// shadowed by an exact window and GET /v1/health reports ok/degraded
// against the audited cova-err.
func WithAudit(a *Auditor) ServerOption { return serve.WithAudit(a) }

// WithLogger enables structured per-request logging (default silent);
// each record carries the request ID that also tags trace events.
func WithLogger(l *slog.Logger) ServerOption { return serve.WithLogger(l) }

// Tracer is a lock-cheap ring buffer of structural sketch events
// (block merges, retires, shrinks, evictions, snapshots): attach one
// to any sketch via SetTracer and see inside its maintenance machinery
// as it runs. Zero overhead beyond an atomic load while disabled.
type Tracer = trace.Tracer

// TraceEvent is one recorded structural event.
type TraceEvent = trace.Event

// TraceSummary is the tracer's aggregate view: per-kind counts and
// last-assigned event IDs plus ring occupancy.
type TraceSummary = trace.Summary

// Traceable is implemented by every sketch in this package: SetTracer
// attaches (or detaches, with nil) a structural event tracer.
type Traceable = trace.Traceable

// NewTracer returns a disabled tracer with the given ring capacity
// (minimum 16); call Enable to start recording.
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// Auditor measures a serving sketch's covariance error online against
// a budgeted exact shadow window — the paper's accuracy contract as
// live telemetry.
type Auditor = audit.Auditor

// AuditConfig parameterises an Auditor (window spec, dimension,
// evaluation stride, shadow row cap, degradation threshold).
type AuditConfig = audit.Config

// AuditResult is one audit evaluation's outcome (cova-err, observed
// norm ratio, drift).
type AuditResult = audit.Result

// AuditStatus is the auditor's health view (served by GET /v1/health).
type AuditStatus = audit.Status

// NewAuditor returns an armed auditor publishing its gauges into reg
// (nil for a private throwaway registry).
func NewAuditor(cfg AuditConfig, reg *MetricsRegistry) *Auditor { return audit.New(cfg, reg) }

// RegisterRuntimeMetrics adds Go runtime and process self-metrics
// (goroutines, heap, GC, uptime, build info) to reg.
func RegisterRuntimeMetrics(reg *MetricsRegistry) { obs.RegisterRuntimeMetrics(reg) }

// RegisterTracer bridges a tracer's per-kind counts and exemplar event
// IDs into reg as scrape-time gauges.
func RegisterTracer(reg *MetricsRegistry, tr *Tracer) { obs.RegisterTracer(reg, tr) }

// MetricsRegistry is a low-overhead metrics registry (counters,
// gauges, histograms) with a hand-rolled Prometheus text exposition —
// no external dependencies.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Instrumented decorates any WindowSketch with ingest/query metrics
// recorded into a registry; it is what WithMetrics applies inside the
// server, exported for use outside HTTP serving (see cmd/swstream
// -stats).
type Instrumented = obs.Instrumented

// NewInstrumented wraps sk, registering its instruments in reg under
// the algo=<name> label.
func NewInstrumented(sk WindowSketch, reg *MetricsRegistry) *Instrumented {
	return obs.NewInstrumented(sk, reg)
}

// Introspector is implemented by sketches that expose internal
// statistics (queue depths, block occupancy, shrink counts, ...) as a
// flat name→value map; every sketch in this package implements it.
type Introspector = core.Introspector

// ProjectionError returns the relative rank-k projection error of b
// against a — the second standard sketch-quality measure.
func ProjectionError(a, b *Dense, k int) float64 { return mat.ProjectionError(a, b, k) }

// DistSite is one node of the distributed-monitoring extension: it
// observes a local sub-stream and ships block sketches (never raw
// rows) to a coordinator.
type DistSite = dist.Site

// DistBlock is the sketch unit shipped from a site to the coordinator.
type DistBlock = dist.Block

// DistCoordinator answers global-window queries from site blocks.
type DistCoordinator = dist.Coordinator

// NewDistSite returns a site shipping FD block sketches of ℓ rows once
// the local block's squared-norm mass exceeds blockMass.
func NewDistSite(id, d, ell int, blockMass float64, ship func(DistBlock)) *DistSite {
	return dist.NewSite(id, d, ell, blockMass, ship)
}

// NewDistCoordinator returns the coordinator for the given window.
func NewDistCoordinator(spec Spec, d, ell, perLevel int, blockMass float64) *DistCoordinator {
	return dist.NewCoordinator(spec, d, ell, perLevel, blockMass)
}

// AutoLMFD sizes an LM-FD sketch for a target covariance error using
// the practical calibration from the reproduction harness (the
// theoretical constants are far looser; see EXPERIMENTS.md).
func AutoLMFD(spec Spec, d int, eps float64) *LM { return core.AutoLMFD(spec, d, eps) }

// AutoDIFD sizes a DI-FD sketch for a target error over a sequence
// window of n rows with the given norm profile.
func AutoDIFD(n, d int, eps, maxSqNorm, ratio float64) *DI {
	return core.AutoDIFD(n, d, eps, maxSqNorm, ratio)
}

// AutoSWR sizes an SWR sampler for a target error.
func AutoSWR(spec Spec, d int, eps float64, seed int64) *SWR {
	return core.AutoSWR(spec, d, eps, seed)
}

// AutoDSFD sizes a DS-FD sketch for a target error over a sequence
// window of n rows, tracking the norm bound adaptively.
func AutoDSFD(n, d int, eps float64) *DSFD { return core.AutoDSFD(n, d, eps) }

// TenantRegistry is a sharded, concurrency-safe collection of named
// sliding-window sketches ("tenants"), each created from a declarative
// TenantConfig — the multi-tenant serving substrate mounted by the
// HTTP server under /v1/tenants/. Supports idle eviction with
// snapshot-to-disk spill and transparent restore; see internal/registry
// for the design notes.
type TenantRegistry = registry.Registry

// TenantConfig declares one tenant's sketch: framework, window kind
// and size, dimension, and sizing knobs (explicit ℓ or a target ε).
type TenantConfig = registry.Config

// Tenant is one named sketch inside a TenantRegistry; all sketch
// access goes through its Acquire/Release mutex.
type Tenant = registry.Tenant

// TenantInfo is one tenant's lock-free summary (ID, algorithm,
// residency, row count, update count).
type TenantInfo = registry.Info

// RegistryOption configures a TenantRegistry (WithMaxTenants,
// WithEvictTTL, WithSpillDir, WithTenantMetrics, WithTenantTrace).
type RegistryOption = registry.Option

// NewTenantRegistry builds a tenant registry; the only fallible option
// is WithSpillDir (directory creation plus the startup scan that
// lazily resumes previously spilled tenants).
func NewTenantRegistry(opts ...RegistryOption) (*TenantRegistry, error) {
	return registry.New(opts...)
}

// WithMaxTenants caps resident tenants; a create into a full registry
// LRU-evicts an idle tenant first (spill or drop).
func WithMaxTenants(n int) RegistryOption { return registry.WithMaxTenants(n) }

// WithEvictTTL marks tenants idle longer than ttl evictable by
// TenantRegistry.Sweep (run Sweep on a ticker; the registry starts no
// goroutines itself).
func WithEvictTTL(ttl time.Duration) RegistryOption { return registry.WithEvictTTL(ttl) }

// WithSpillDir preserves evicted tenants on disk: snapshot-capable
// sketches spill to dir and restore transparently on next touch.
func WithSpillDir(dir string) RegistryOption { return registry.WithSpillDir(dir) }

// WithTenantMetrics publishes tenant-lifecycle counters and residency
// gauges into reg.
func WithTenantMetrics(reg *MetricsRegistry) RegistryOption { return registry.WithObs(reg) }

// WithTenantTrace emits tenant lifecycle events (create, evict,
// restore, delete) into tr.
func WithTenantTrace(tr *Tracer) RegistryOption { return registry.WithTrace(tr) }

// WithRegistryClock overrides the registry's time source for recency
// stamps and TTL decisions — deterministic eviction in tests and
// demos (see examples/multitenant).
func WithRegistryClock(now func() time.Time) RegistryOption { return registry.WithClock(now) }

// WithRegistry mounts a caller-built tenant registry on a Server
// instead of the plain one it otherwise creates; the server's default
// sketch is adopted into it as the pinned "default" tenant.
func WithRegistry(reg *TenantRegistry) ServerOption { return serve.WithRegistry(reg) }
