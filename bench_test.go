// Benchmarks regenerating each table and figure of the paper at
// reduced scale. Error figures (3, 4, 6, 7, 8) run one mini
// experiment per iteration and report the observed covariance errors
// via b.ReportMetric; update-cost figures (5, 9) are plain throughput
// benchmarks whose ns/op IS the figure's y-axis. The full-scale
// regenerator is cmd/swbench.
package swsketch_test

import (
	"fmt"
	"sync"
	"testing"

	"swsketch/internal/core"
	"swsketch/internal/data"
	"swsketch/internal/eval"
	"swsketch/internal/window"
)

// benchScale keeps every benchmark iteration around a second.
const (
	benchN   = 6000
	benchWin = 800
)

var (
	datasetOnce  sync.Once
	benchSeqData map[string]*data.Dataset
	benchTimeSet map[string]*data.Dataset
	benchDelta   map[string]float64
)

func benchDatasets() {
	datasetOnce.Do(func() {
		benchSeqData = map[string]*data.Dataset{
			"SYNTHETIC": data.Synthetic(data.SyntheticConfig{N: benchN, D: 60, SignalDim: 30, Seed: 1}),
			"BIBD":      data.BIBD(data.BIBDConfig{V: 22, K: 8, N: benchN, Seed: 2}),
			"PAMAP":     data.PAMAP(data.PAMAPConfig{N: benchN, D: 35, SkewAt: benchN * 5 / 8, SkewLen: benchWin / 2, Seed: 3}),
		}
		wiki := data.Wiki(data.WikiConfig{N: benchN, D: 120, Seed: 4})
		rail := data.Rail(data.RailConfig{N: benchN, D: 120, Seed: 5})
		benchTimeSet = map[string]*data.Dataset{"WIKI": wiki, "RAIL": rail}
		span := wiki.Times[wiki.N()-1] - wiki.Times[0]
		benchDelta = map[string]float64{
			"WIKI": span * benchWin / benchN,
			"RAIL": 2 * benchWin,
		}
	})
}

// reportErrors runs one evaluation pass and reports the figure's error
// metrics. ns/op then measures the full experiment, documenting its cost.
func reportErrors(b *testing.B, ds *data.Dataset, spec window.Spec, specs []eval.SketchSpec) {
	b.Helper()
	cfg := eval.Config{Spec: spec, QueryStride: 1200, Warmup: benchWin, MaxQueries: 4, SkipTiming: true}
	var avg, max float64
	var rows int
	for i := 0; i < b.N; i++ {
		ms := eval.Evaluate(ds, specs, cfg)
		avg, max, rows = 0, 0, 0
		for _, m := range ms {
			avg += m.AvgErr / float64(len(ms))
			if m.MaxErr > max {
				max = m.MaxErr
			}
			if m.MaxRows > rows {
				rows = m.MaxRows
			}
		}
	}
	b.ReportMetric(avg, "avg-err")
	b.ReportMetric(max, "max-err")
	b.ReportMetric(float64(rows), "max-rows")
}

// sketchLadder builds a single mid-size configuration of each
// algorithm for one dataset, mirroring a middle column of the figures.
func sketchLadder(ds *data.Dataset, spec window.Spec, withDI bool) []eval.SketchSpec {
	d := ds.D()
	specs := []eval.SketchSpec{
		{Label: "SWR", Param: "ell=40", New: func() core.WindowSketch { return core.NewSWR(spec, 40, d, 11) }},
		{Label: "SWOR", Param: "ell=40", New: func() core.WindowSketch { return core.NewSWOR(spec, 40, d, 12) }},
		{Label: "SWOR-ALL", Param: "ell=40", New: func() core.WindowSketch { return core.NewSWORAll(spec, 40, d, 13) }},
		{Label: "LM-FD", Param: "ell=24,b=8", New: func() core.WindowSketch { return core.NewLMFD(spec, d, 24, 8) }},
	}
	if withDI {
		_, maxSq := ds.NormRatio()
		cfg := core.DIConfig{N: benchWin, R: maxSq, L: 6, Ell: 64, RSlack: 1.01}
		specs = append(specs, eval.SketchSpec{
			Label: "DI-FD", Param: "L=6,ell=64",
			New: func() core.WindowSketch { return core.NewDIFD(cfg, d) },
		})
	}
	return specs
}

// BenchmarkTable2 regenerates the sequence-dataset statistics; the
// reported metric is each dataset's norm ratio R.
func BenchmarkTable2(b *testing.B) {
	benchDatasets()
	for _, name := range []string{"SYNTHETIC", "BIBD", "PAMAP"} {
		ds := benchSeqData[name]
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				ratio, _ = ds.NormRatio()
			}
			b.ReportMetric(ratio, "ratio-R")
			b.ReportMetric(float64(ds.N()), "rows")
			b.ReportMetric(float64(ds.D()), "d")
		})
	}
}

// BenchmarkTable3 regenerates the time-dataset statistics.
func BenchmarkTable3(b *testing.B) {
	benchDatasets()
	for _, name := range []string{"WIKI", "RAIL"} {
		ds := benchTimeSet[name]
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				ratio, _ = ds.NormRatio()
			}
			b.ReportMetric(ratio, "ratio-R")
			b.ReportMetric(benchDelta[name], "delta")
		})
	}
}

// BenchmarkFig3 regenerates the average-error-vs-size experiment
// (sequence windows); avg-err is the figure's metric.
func BenchmarkFig3(b *testing.B) {
	benchDatasets()
	for _, name := range []string{"SYNTHETIC", "BIBD", "PAMAP"} {
		ds := benchSeqData[name]
		b.Run(name, func(b *testing.B) {
			reportErrors(b, ds, window.Seq(benchWin), sketchLadder(ds, window.Seq(benchWin), true))
		})
	}
}

// BenchmarkFig4 shares Fig 3's runs in swbench; here it reports the
// max-error view of the same mini experiment.
func BenchmarkFig4(b *testing.B) {
	benchDatasets()
	for _, name := range []string{"SYNTHETIC", "BIBD", "PAMAP"} {
		ds := benchSeqData[name]
		b.Run(name, func(b *testing.B) {
			reportErrors(b, ds, window.Seq(benchWin), sketchLadder(ds, window.Seq(benchWin), true))
		})
	}
}

// BenchmarkFig5 measures per-row update cost on sequence windows —
// ns/op is exactly the figure's y-axis.
func BenchmarkFig5(b *testing.B) {
	benchDatasets()
	spec := window.Seq(benchWin)
	for _, name := range []string{"SYNTHETIC", "BIBD", "PAMAP"} {
		ds := benchSeqData[name]
		for _, sk := range sketchLadder(ds, spec, true) {
			b.Run(fmt.Sprintf("%s/%s", name, sk.Label), func(b *testing.B) {
				s := sk.New()
				rows := ds.Rows
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Update(rows[i%len(rows)], float64(i))
				}
			})
		}
	}
}

// BenchmarkFig6 runs the offline skewed-window sampling study; the
// reported metrics are the SWR and SWOR errors at ℓ=40 and ℓ=160 —
// enough to expose the SWOR-grows-with-ℓ anomaly.
func BenchmarkFig6(b *testing.B) {
	benchDatasets()
	ds := benchSeqData["PAMAP"]
	from := benchN * 5 / 8
	to := from + benchWin/2
	var pts []eval.OfflinePoint
	for i := 0; i < b.N; i++ {
		pts = eval.OfflineSampling(ds, from, to, []int{40, 160}, 5, 1)
	}
	b.ReportMetric(pts[0].SWR, "swr-err-40")
	b.ReportMetric(pts[1].SWR, "swr-err-160")
	b.ReportMetric(pts[0].SWORPerRow, "swor-err-40")
	b.ReportMetric(pts[1].SWORPerRow, "swor-err-160")
}

// BenchmarkFig7 regenerates the time-window average-error experiment.
func BenchmarkFig7(b *testing.B) {
	benchDatasets()
	for _, name := range []string{"WIKI", "RAIL"} {
		ds := benchTimeSet[name]
		spec := window.TimeSpan(benchDelta[name])
		b.Run(name, func(b *testing.B) {
			reportErrors(b, ds, spec, sketchLadder(ds, spec, false))
		})
	}
}

// BenchmarkFig8 reports the max-error view of the time-window runs.
func BenchmarkFig8(b *testing.B) {
	benchDatasets()
	for _, name := range []string{"WIKI", "RAIL"} {
		ds := benchTimeSet[name]
		spec := window.TimeSpan(benchDelta[name])
		b.Run(name, func(b *testing.B) {
			reportErrors(b, ds, spec, sketchLadder(ds, spec, false))
		})
	}
}

// BenchmarkFig9 measures per-row update cost on time windows.
func BenchmarkFig9(b *testing.B) {
	benchDatasets()
	for _, name := range []string{"WIKI", "RAIL"} {
		ds := benchTimeSet[name]
		spec := window.TimeSpan(benchDelta[name])
		for _, sk := range sketchLadder(ds, spec, false) {
			b.Run(fmt.Sprintf("%s/%s", name, sk.Label), func(b *testing.B) {
				s := sk.New()
				rows := ds.Rows
				times := ds.Times
				span := times[len(times)-1] + 1
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					idx := i % len(rows)
					// Keep timestamps monotone across wraparounds.
					s.Update(rows[idx], float64(i/len(rows))*span+times[idx])
				}
			})
		}
	}
}
