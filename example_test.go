package swsketch_test

import (
	"fmt"
	"strings"

	"swsketch"
)

// ExampleNewLMFD maintains the paper's recommended sliding-window
// sketch over a sequence window and inspects the answer's shape.
func ExampleNewLMFD() {
	const d = 4
	sketch := swsketch.NewLMFD(swsketch.Seq(100), d, 8, 4)
	for i := 0; i < 500; i++ {
		row := make([]float64, d)
		row[i%d] = 1 // deterministic toy stream
		sketch.Update(row, float64(i))
	}
	b := sketch.Query(499)
	fmt.Println("columns:", b.Cols())
	fmt.Println("rows within sketch budget:", b.Rows() <= 8)
	// Output:
	// columns: 4
	// rows within sketch budget: true
}

// ExampleNewSWR shows the interpretable sampling sketch: the answer
// rows are rescaled rows of the window itself.
func ExampleNewSWR() {
	sketch := swsketch.NewSWR(swsketch.Seq(50), 4, 2, 1)
	for i := 0; i < 200; i++ {
		sketch.Update([]float64{1, 2}, float64(i))
	}
	b := sketch.Query(199)
	// Every sampled row is a rescaling of (1, 2): the ratio survives.
	fmt.Println("samples:", b.Rows())
	fmt.Printf("direction preserved: %.1f\n", b.At(0, 1)/b.At(0, 0))
	// Output:
	// samples: 4
	// direction preserved: 2.0
}

// ExampleNewDIFD runs the Dyadic Interval sketch on unit-norm rows
// (R = 1), its best regime.
func ExampleNewDIFD() {
	cfg := swsketch.DIConfig{N: 64, R: 1, L: 4, Ell: 16}
	sketch := swsketch.NewDIFD(cfg, 2)
	for i := 0; i < 300; i++ {
		sketch.Update([]float64{1, 0}, float64(i))
	}
	b := sketch.Query(299)
	fmt.Println("sequence-window answer columns:", b.Cols())
	// Output:
	// sequence-window answer columns: 2
}

// ExampleComputePCA extracts approximate window PCA from a sketch
// answer.
func ExampleComputePCA() {
	sketch := swsketch.NewLMFD(swsketch.Seq(200), 3, 8, 4)
	for i := 0; i < 400; i++ {
		// Energy concentrated on the middle coordinate.
		sketch.Update([]float64{0.01, 5, 0.01}, float64(i))
	}
	p := swsketch.ComputePCA(sketch.Query(399), 1)
	fmt.Printf("dominant direction explains %.0f%% of energy\n", 100*p.Explained[0])
	// Output:
	// dominant direction explains 100% of energy
}

// ExampleNewChangeDetector flags a distribution shift between a
// reference window and the tracked test window.
func ExampleNewChangeDetector() {
	ref := swsketch.FromRows([][]float64{{3, 0}, {4, 0}, {5, 0}})
	det := swsketch.NewChangeDetector(ref, 1, 0.2)

	same := swsketch.FromRows([][]float64{{6, 0}})
	_, changed := det.Test(same)
	fmt.Println("same distribution flagged:", changed)

	shifted := swsketch.FromRows([][]float64{{0, 6}})
	_, changed = det.Test(shifted)
	fmt.Println("shifted distribution flagged:", changed)
	// Output:
	// same distribution flagged: false
	// shifted distribution flagged: true
}

// ExampleAutoLMFD sizes a sketch from a target error instead of raw
// knobs.
func ExampleAutoLMFD() {
	sketch := swsketch.AutoLMFD(swsketch.Seq(1000), 8, 0.05)
	sketch.Update(make([]float64, 8), 0)
	fmt.Println("configured:", sketch.Name())
	// Output:
	// configured: LM-FD
}

// ExampleDI_QueryRange queries an arbitrary sub-interval of the
// window — a capability unique to the Dyadic Interval sketch.
func ExampleDI_QueryRange() {
	cfg := swsketch.DIConfig{N: 64, R: 1, L: 4, Ell: 32}
	sketch := swsketch.NewDIFD(cfg, 2)
	for i := 0; i < 64; i++ {
		sketch.Update([]float64{1, 0}, float64(i))
	}
	sub := sketch.QueryRange(31, 47) // rows 32..47 only
	full := sketch.Query(63)
	fmt.Println("sub-range mass is a fraction of the window:",
		sub.FrobeniusSq() < full.FrobeniusSq())
	// Output:
	// sub-range mass is a fraction of the window: true
}

// ExampleNewDistSite wires one site to a coordinator: rows stay local,
// sketches travel.
func ExampleNewDistSite() {
	coord := swsketch.NewDistCoordinator(swsketch.Seq(100), 2, 8, 4, 10)
	site := swsketch.NewDistSite(0, 2, 4, 10, coord.Receive)
	for i := 0; i < 40; i++ {
		site.Observe([]float64{1, 1}, float64(i))
	}
	site.Flush()
	fmt.Println("rows observed:", site.RowsObserved())
	fmt.Println("sketch rows shipped fewer:", site.RowsShipped() < site.RowsObserved())
	fmt.Println("coordinator answers:", coord.Query(39).Cols())
	// Output:
	// rows observed: 40
	// sketch rows shipped fewer: true
	// coordinator answers: 2
}

// ExampleReadMatrixMarket loads a UFlorida-collection matrix (the
// format of the paper's BIBD and RAIL datasets).
func ExampleReadMatrixMarket() {
	mm := "%%MatrixMarket matrix coordinate pattern general\n2 3 2\n1 1\n2 3\n"
	ds, err := swsketch.ReadMatrixMarket("bibd", strings.NewReader(mm))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d rows × %d cols\n", ds.N(), ds.D())
	// Output:
	// 2 rows × 3 cols
}

// ExampleNewTenantRegistry hosts several independent sliding windows
// in one process: tenants are declared by config, ingested separately,
// and answer their own windows (see examples/multitenant for the full
// demo with eviction and restore).
func ExampleNewTenantRegistry() {
	reg, err := swsketch.NewTenantRegistry()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cfg := swsketch.TenantConfig{
		Framework: "lm-fd", Window: "sequence", Size: 50, D: 3, Ell: 8, B: 4,
	}
	for _, id := range []string{"alpha", "beta"} {
		if _, err := reg.Create(id, cfg); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	alpha, _ := reg.Get("alpha")
	if err := alpha.Acquire(); err != nil {
		fmt.Println("error:", err)
		return
	}
	for i := 0; i < 100; i++ {
		alpha.Sketch().Update([]float64{1, 0, 1}, float64(i))
	}
	alpha.Commit(100, 99)
	alpha.Release()

	fmt.Println("tenants:", reg.Len())
	for _, info := range reg.List() {
		fmt.Printf("%s: %s, %d updates\n", info.ID, info.Algorithm, info.Updates)
	}
	// Output:
	// tenants: 2
	// alpha: LM-FD, 100 updates
	// beta: LM-FD, 0 updates
}
