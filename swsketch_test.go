package swsketch_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"swsketch"
)

// These tests exercise the public facade end-to-end the way a
// downstream user would: construct a sketch, stream rows, query, and
// measure error with the exported oracle.

func randRow(rng *rand.Rand, d int) []float64 {
	r := make([]float64, d)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	return r
}

func TestPublicAPISequenceWindow(t *testing.T) {
	const d, win = 8, 200
	spec := swsketch.Seq(win)
	rng := rand.New(rand.NewSource(1))

	sketches := []swsketch.WindowSketch{
		swsketch.NewSWR(spec, 20, d, 1),
		swsketch.NewSWOR(spec, 20, d, 2),
		swsketch.NewSWORAll(spec, 20, d, 3),
		swsketch.NewLMFD(spec, d, 16, 6),
		swsketch.NewLMHash(spec, d, 128, 6, 4),
		swsketch.NewDIFD(swsketch.DIConfig{N: win, R: 40, L: 5, Ell: 32, RSlack: 2}, d),
		swsketch.NewBest(spec, 8, d),
		swsketch.NewConcurrent(swsketch.NewLMFD(spec, d, 16, 6)),
	}
	oracle := swsketch.NewExactWindow(spec, d)
	for i := 0; i < 1000; i++ {
		row := randRow(rng, d)
		tt := float64(i)
		oracle.Update(row, tt)
		for _, sk := range sketches {
			sk.Update(row, tt)
		}
	}
	for _, sk := range sketches {
		b := sk.Query(999)
		if b.Cols() != d {
			t.Fatalf("%s: query cols = %d", sk.Name(), b.Cols())
		}
		if e := oracle.CovaErr(b); e > 0.9 {
			t.Fatalf("%s: error %v out of range", sk.Name(), e)
		}
		if sk.RowsStored() <= 0 {
			t.Fatalf("%s: RowsStored = %d", sk.Name(), sk.RowsStored())
		}
	}
}

func TestPublicAPITimeWindow(t *testing.T) {
	const d = 6
	spec := swsketch.TimeSpan(50)
	rng := rand.New(rand.NewSource(2))
	lm := swsketch.NewLMFD(spec, d, 16, 6)
	oracle := swsketch.NewExactWindow(spec, d)
	tt := 0.0
	for i := 0; i < 2000; i++ {
		tt += rng.ExpFloat64()
		row := randRow(rng, d)
		lm.Update(row, tt)
		oracle.Update(row, tt)
	}
	if e := oracle.CovaErr(lm.Query(tt)); e > 0.5 {
		t.Fatalf("time-window LM-FD error = %v", e)
	}
}

func TestPublicAPILinearAlgebra(t *testing.T) {
	a := swsketch.FromRows([][]float64{{3, 0}, {0, 4}, {0, 3}})
	s := swsketch.SingularValues(a)
	if len(s) != 2 || s[0] < s[1] {
		t.Fatalf("singular values = %v", s)
	}
	res := swsketch.SVD(a)
	if len(res.S) != 2 {
		t.Fatalf("SVD components = %d", len(res.S))
	}
	b := swsketch.RankK(a, 1)
	if b.Rows() != 1 || b.Cols() != 2 {
		t.Fatalf("RankK dims = %d×%d", b.Rows(), b.Cols())
	}
	if err := swsketch.CovarianceError(a.Gram(), a.FrobeniusSq(), swsketch.RankK(a, 2)); err > 1e-8 {
		t.Fatalf("full-rank covariance error = %v", err)
	}
}

func TestPublicAPIStreamingFD(t *testing.T) {
	fd := swsketch.NewFD(8, 4)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		fd.Update(randRow(rng, 4))
	}
	if fd.Matrix().Cols() != 4 {
		t.Fatal("FD matrix shape wrong")
	}
	var m swsketch.Mergeable = fd
	m.Merge(swsketch.NewFD(8, 4))
}

func TestPublicAPIDatasets(t *testing.T) {
	for _, ds := range []*swsketch.Dataset{
		swsketch.Synthetic(swsketch.SyntheticConfig{N: 50, D: 10, Seed: 1}),
		swsketch.BIBD(swsketch.BIBDConfig{V: 7, K: 3, N: 50, Seed: 1}),
		swsketch.PAMAP(swsketch.PAMAPConfig{N: 50, D: 10, SkewAt: -1, Seed: 1}),
		swsketch.Wiki(swsketch.WikiConfig{N: 50, D: 40, Seed: 1}),
		swsketch.Rail(swsketch.RailConfig{N: 50, D: 40, Seed: 1}),
	} {
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		if ds.N() != 50 {
			t.Fatalf("%s: n = %d", ds.Name, ds.N())
		}
	}
}

func TestPublicAPIEHNorms(t *testing.T) {
	spec := swsketch.Seq(100)
	nt := swsketch.NewEHNorms(spec, 0.1)
	swr := swsketch.NewSWR(spec, 4, 2, 9)
	swr.SetNormTracker(nt)
	for i := 0; i < 500; i++ {
		swr.Update([]float64{1, 1}, float64(i))
	}
	if b := swr.Query(499); b.Rows() == 0 {
		t.Fatal("EH-backed SWR returned nothing")
	}
}

func TestPublicAPIServer(t *testing.T) {
	sk := swsketch.NewLMFD(swsketch.Seq(10), 2, 4, 3)
	srv := swsketch.NewServer(sk, 2)
	if srv.Handler() == nil {
		t.Fatal("nil handler")
	}
}

func TestPublicAPIProjectionError(t *testing.T) {
	a := swsketch.FromRows([][]float64{{1, 0}, {0, 1}, {2, 0}})
	b := swsketch.RankK(a, 1)
	if pe := swsketch.ProjectionError(a, b, 1); pe < 0.99 || pe > 1.01 {
		t.Fatalf("projection error = %v, want ≈ 1", pe)
	}
}

func TestPublicAPIRemainingWrappers(t *testing.T) {
	// Exercise the facade wrappers not touched by the scenario tests.
	d := 4
	cfg := swsketch.DIConfig{N: 64, R: 40, L: 4, Ell: 64, MinEll: 8, RSlack: 2}
	rng := rand.New(rand.NewSource(1))
	sketches := []swsketch.WindowSketch{
		swsketch.NewDIRP(cfg, d, 1),
		swsketch.NewDIHash(cfg, d, 1),
		swsketch.NewLMRP(swsketch.Seq(64), d, 32, 4, 2),
		swsketch.NewUnboundedFD(8, d),
		swsketch.NewZero(d),
	}
	for i := 0; i < 200; i++ {
		row := randRow(rng, d)
		for _, sk := range sketches {
			sk.Update(row, float64(i))
		}
	}
	for _, sk := range sketches {
		if b := sk.Query(199); b.Cols() != d && b.Rows() != 0 {
			t.Fatalf("%s: bad query shape", sk.Name())
		}
	}

	// Matrix helpers.
	m := swsketch.NewDense(2, 2)
	m.Set(0, 0, 2)
	if swsketch.SubspaceDistance(swsketch.ComputePCA(m, 1), swsketch.ComputePCA(m, 1)) > 1e-9 {
		t.Fatal("SubspaceDistance of identical basis")
	}
	if swsketch.ResidualEnergy(m, swsketch.ComputePCA(m, 1)) > 1e-9 {
		t.Fatal("ResidualEnergy of own basis")
	}

	// Sparse helpers.
	sr := swsketch.NewSparseRow([]int{1}, []float64{2}, d)
	if sr.SqNorm() != 4 {
		t.Fatal("sparse wrapper broken")
	}
	if swsketch.SparseFromDense([]float64{0, 3}).Nnz() != 1 {
		t.Fatal("SparseFromDense wrapper broken")
	}
	var su swsketch.SparseUpdater = swsketch.NewLMFD(swsketch.Seq(8), d, 4, 3)
	su.UpdateSparse(sr, 0)
}

func TestPublicAPILoaders(t *testing.T) {
	mm := "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3\n"
	ds, err := swsketch.ReadMatrixMarket("m", strings.NewReader(mm))
	if err != nil || ds.Rows[0][0] != 3 {
		t.Fatalf("ReadMatrixMarket: %v %v", err, ds)
	}
	pp, err := swsketch.ReadPAMAP("p", strings.NewReader("1 0 5 6\n"))
	if err != nil || pp.D() != 2 {
		t.Fatalf("ReadPAMAP: %v", err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := swsketch.ReadCSV("m", &buf)
	if err != nil || back.N() != 2 {
		t.Fatalf("ReadCSV: %v", err)
	}
}

func TestPublicAPIAutoConfig(t *testing.T) {
	spec := swsketch.Seq(100)
	for _, sk := range []swsketch.WindowSketch{
		swsketch.AutoLMFD(spec, 4, 0.1),
		swsketch.AutoSWR(spec, 4, 0.1, 1),
		swsketch.AutoDIFD(100, 4, 0.1, 20, 5),
	} {
		sk.Update([]float64{1, 2, 0, 0}, 0)
		if sk.Query(0).Cols() != 4 {
			t.Fatalf("%s: bad query", sk.Name())
		}
	}
}

// TestScenarioEveryDataset runs the recommended sketch end-to-end over
// every paper dataset generator through the public API — the smoke a
// downstream adopter would run first.
func TestScenarioEveryDataset(t *testing.T) {
	type scenario struct {
		ds   *swsketch.Dataset
		spec swsketch.Spec
	}
	scenarios := map[string]scenario{
		"SYNTHETIC": {swsketch.Synthetic(swsketch.SyntheticConfig{N: 2500, D: 24, SignalDim: 12, Seed: 1}), swsketch.Seq(500)},
		"BIBD":      {swsketch.BIBD(swsketch.BIBDConfig{V: 10, K: 4, N: 2500, Seed: 2}), swsketch.Seq(500)},
		"PAMAP":     {swsketch.PAMAP(swsketch.PAMAPConfig{N: 2500, D: 20, SkewAt: -1, Seed: 3}), swsketch.Seq(500)},
		"WIKI":      {swsketch.Wiki(swsketch.WikiConfig{N: 2500, D: 60, Seed: 4}), swsketch.TimeSpan(300)},
		"RAIL":      {swsketch.Rail(swsketch.RailConfig{N: 2500, D: 60, Seed: 5}), swsketch.TimeSpan(1000)},
	}
	for name, sc := range scenarios {
		sc := sc
		t.Run(name, func(t *testing.T) {
			sketch := swsketch.NewLMFD(sc.spec, sc.ds.D(), 24, 8)
			oracle := swsketch.NewExactWindow(sc.spec, sc.ds.D())
			for i, row := range sc.ds.Rows {
				tt := sc.ds.Times[i]
				sketch.Update(row, tt)
				oracle.Update(row, tt)
			}
			last := sc.ds.Times[sc.ds.N()-1]
			b := sketch.Query(last)
			if e := oracle.CovaErr(b); e > 0.45 {
				t.Fatalf("LM-FD error on %s = %v", name, e)
			}
			// The PCA pipeline must run on every dataset's output.
			if p := swsketch.ComputePCA(b, 3); len(p.Explained) == 0 {
				t.Fatal("PCA produced nothing")
			}
		})
	}
}

// TestPaperDimensionWiki runs the WIKI pipeline at the paper's true
// vocabulary size (d = 7047) through the sparse ingest path — the
// configuration the default harness scales down — and confirms the
// sketch stays accurate and far smaller than the window.
func TestPaperDimensionWiki(t *testing.T) {
	if testing.Short() {
		t.Skip("high-dimensional smoke test")
	}
	ds := swsketch.Wiki(swsketch.WikiConfig{N: 3000, D: 7047, Seed: 13})
	delta := (ds.Times[ds.N()-1] - ds.Times[0]) / 3
	spec := swsketch.TimeSpan(delta)
	sketch := swsketch.NewLMFD(spec, ds.D(), 16, 6)
	oracle := swsketch.NewExactWindow(spec, ds.D())
	for i, row := range ds.Rows {
		tt := ds.Times[i]
		sketch.UpdateSparse(swsketch.SparseFromDense(row), tt)
		oracle.Update(row, tt)
	}
	last := ds.Times[ds.N()-1]
	b := sketch.Query(last)
	if b.Cols() != 7047 {
		t.Fatalf("cols = %d", b.Cols())
	}
	if e := oracle.CovaErr(b); e > 0.35 {
		t.Fatalf("d=7047 LM-FD error = %v", e)
	}
	// At this window size the LM structure floor (L·b·ℓ) is close to
	// the window, so only modest row savings are possible; the memory
	// saving is real regardless (rows × d floats).
	if sketch.RowsStored() >= oracle.Len() {
		t.Fatalf("sketch %d rows vs window %d — no savings at all", sketch.RowsStored(), oracle.Len())
	}
}

// TestPublicAPIObservability exercises the tracing and auditing
// facade: attach a tracer to a sketch, audit it against the exact
// shadow, and bridge both into a metrics registry.
func TestPublicAPIObservability(t *testing.T) {
	const d, win = 6, 100
	spec := swsketch.Seq(win)
	rng := rand.New(rand.NewSource(7))

	tr := swsketch.NewTracer(1024)
	tr.Enable()
	sk := swsketch.NewLMFD(spec, d, 8, 4)
	var traceable swsketch.Traceable = sk
	traceable.SetTracer(tr)

	reg := swsketch.NewMetricsRegistry()
	swsketch.RegisterRuntimeMetrics(reg)
	swsketch.RegisterTracer(reg, tr)
	aud := swsketch.NewAuditor(swsketch.AuditConfig{Spec: spec, D: d, Stride: 32}, reg)

	for start := 0; start < 256; start += 32 {
		rows := make([][]float64, 32)
		times := make([]float64, 32)
		for i := range rows {
			rows[i] = randRow(rng, d)
			times[i] = float64(start + i)
		}
		sk.UpdateBatch(rows, times)
		aud.ObserveBatch(rows, times, sk.Query)
	}

	if tr.Total() == 0 {
		t.Fatal("tracer recorded no structural events")
	}
	st := aud.Status()
	if st.Evaluations == 0 || st.CovaErr < 0 {
		t.Fatalf("audit status %+v", st)
	}
	out := reg.Expose()
	for _, want := range []string{"swsketch_go_goroutines", "swsketch_trace_events", "swsketch_audit_cova_err"} {
		if !strings.Contains(out, want) {
			t.Fatalf("registry missing %q", want)
		}
	}

	// The full observability stack over HTTP: trace + audit + logs.
	srv := swsketch.NewServer(swsketch.NewLMFD(spec, d, 8, 4), d,
		swsketch.WithMetrics(swsketch.NewMetricsRegistry()),
		swsketch.WithTrace(swsketch.NewTracer(256)),
		swsketch.WithAudit(swsketch.NewAuditor(swsketch.AuditConfig{Spec: spec, D: d}, nil)),
	)
	if srv.Handler() == nil {
		t.Fatal("nil handler")
	}
}
