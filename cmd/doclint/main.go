// Command doclint fails when an exported identifier lacks a doc
// comment. It parses source with go/ast (no build step, no external
// tooling) and checks every exported top-level declaration: types,
// functions, methods with exported receivers, and each exported name
// inside const/var groups (a group comment on the block satisfies its
// members, matching godoc's rendering).
//
// Usage:
//
//	doclint [packages...]
//
// Package arguments are directory paths relative to the module root
// ("." and the "./..." wildcard are understood). With no arguments it
// checks the documentation surface this repository gates in CI: the
// root facade and the serving-layer packages
// internal/{serve,obs,trace,registry,dist} (see `make doclint`).
//
// Exit status is 1 when any undocumented exported identifier is found,
// with one "path:line: identifier" diagnostic per finding; 0 otherwise.
// Test files and generated files (a "Code generated ... DO NOT EDIT."
// first comment) are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultPackages is the documentation surface gated in CI.
var defaultPackages = []string{
	".",
	"internal/serve",
	"internal/obs",
	"internal/obs/audit",
	"internal/trace",
	"internal/registry",
	"internal/dist",
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = defaultPackages
	}
	dirs, err := expandPackages(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
		os.Exit(2)
	}
	var findings []string
	for _, dir := range dirs {
		fs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		sort.Strings(findings)
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported identifier(s)\n", len(findings))
		os.Exit(1)
	}
}

// expandPackages resolves the argument list to a sorted set of
// directories containing Go files, expanding "./..." wildcards.
func expandPackages(args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, arg := range args {
		if root, ok := strings.CutSuffix(arg, "/..."); ok {
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
					return fs.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		if !hasGoFiles(arg) {
			return nil, fmt.Errorf("no Go files in %q", arg)
		}
		add(arg)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// lintDir checks every non-test Go file of one directory.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			if isGenerated(file) {
				continue
			}
			findings = append(findings, lintFile(fset, file)...)
		}
	}
	return findings, nil
}

// isGenerated detects the standard "Code generated ... DO NOT EDIT."
// marker in a file's leading comments.
func isGenerated(file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.End() >= file.Package {
			break
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, "DO NOT EDIT") {
				return true
			}
		}
	}
	return false
}

// lintFile reports every undocumented exported top-level identifier in
// one parsed file.
func lintFile(fset *token.FileSet, file *ast.File) []string {
	var findings []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s is undocumented", p.Filename, p.Line, name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || hasDoc(d.Doc) {
				continue
			}
			// Methods count when both the receiver type and the method
			// are exported (unexported receivers are internal surface).
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			report(d.Name.Pos(), nameOf(d))
		case *ast.GenDecl:
			groupDoc := hasDoc(d.Doc)
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && !groupDoc && !hasDoc(sp.Doc) {
						report(sp.Name.Pos(), "type "+sp.Name.Name)
					}
				case *ast.ValueSpec:
					// A const/var block's group comment documents its
					// members; otherwise each exported name needs its
					// spec documented (matching godoc's rendering).
					if groupDoc || hasDoc(sp.Doc) {
						continue
					}
					for _, n := range sp.Names {
						if n.IsExported() {
							report(n.Pos(), n.Name)
						}
					}
				}
			}
		}
	}
	return findings
}

// hasDoc reports whether a doc comment carries actual text.
func hasDoc(cg *ast.CommentGroup) bool {
	return cg != nil && strings.TrimSpace(cg.Text()) != ""
}

// exportedReceiver reports whether a method's receiver type is
// exported (pointer receivers and generic instantiations unwrapped).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// nameOf renders a function or method name for diagnostics.
func nameOf(d *ast.FuncDecl) string {
	if d.Recv == nil {
		return "func " + d.Name.Name
	}
	return "method " + receiverName(d.Recv) + "." + d.Name.Name
}

// receiverName renders the receiver type name.
func receiverName(recv *ast.FieldList) string {
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return "?"
		}
	}
}
