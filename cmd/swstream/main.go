// Command swstream streams a CSV of timestamped rows through a chosen
// sliding-window matrix sketch and periodically prints the window
// approximation's summary: sketch size, Frobenius mass, and the top
// singular values (the window's PCA spectrum). The input is processed
// one line at a time — memory stays proportional to the sketch, not
// the stream, which is the entire point of the sketches.
//
// Input format: each line is "timestamp,v1,...,vd" (the format written
// by swgen / the data package). For sequence-based windows the
// timestamp column is ignored and the row index is used instead.
//
// Usage:
//
//	swstream -algo lm-fd -window 1000 [-time] [-every 500] [-ell 24] [-fd-buffer 2] [-fd-alpha 0.5] [-stats] [-trace] [-audit] < stream.csv
//
// The paired AMM frameworks (lm-amm, di-amm) read the same CSV but
// treat each row as the stacked pair [a|b]: -d-b gives the width of
// the b suffix, and the sketch maintains a windowed estimate of AᵀB
// instead of AᵀA. The periodic summary then describes the stacked
// co-sketch [X|Y].
//
// With -stats the run ends with an instrumentation summary: rows and
// batches ingested, update/query latency totals, and the sketch's
// internal statistics (core.Introspector).
//
// With -trace an event tracer records the sketch's structural
// transitions (block closes, merges, shrinks, evictions) and the run
// ends with a per-kind event summary; -trace-out writes the full event
// ring as JSONL to a file.
//
// With -audit an exact shadow window runs alongside the sketch and the
// run ends with the audited covariance error — the paper's accuracy
// metric, measured live on this very stream (-audit-stride sets the
// evaluation cadence).
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sort"

	"swsketch/internal/core"
	"swsketch/internal/mat"
	"swsketch/internal/obs"
	"swsketch/internal/obs/audit"
	"swsketch/internal/stream"
	"swsketch/internal/trace"
	"swsketch/internal/window"
)

func main() {
	var (
		algo    = flag.String("algo", "lm-fd", "sketch: swr | swor | swor-all | lm-fd | lm-hash | di-fd | ds-fd | lm-amm | di-amm | best")
		winSize = flag.Float64("window", 1000, "window size (rows, or time span with -time)")
		useTime = flag.Bool("time", false, "time-based window (use CSV timestamps)")
		every   = flag.Int("every", 500, "print a summary every k rows")
		batch   = flag.Int("batch", 256, "rows per bulk ingest call (1 = row-at-a-time)")
		ell     = flag.Int("ell", 24, "sketch size parameter ℓ")
		b       = flag.Int("b", 8, "LM blocks per level")
		levels  = flag.Int("L", 6, "DI levels")
		rBound  = flag.Float64("R", 0, "max squared row norm bound R (required for di-fd/di-amm; optional for ds-fd, 0 = adaptive)")
		dBSplit = flag.Int("d-b", 0, "B-side suffix width of each stacked row [a|b] (required for lm-amm/di-amm)")
		fdBuf   = flag.Int("fd-buffer", 0, "FastFD working-buffer factor b for the FD frameworks (0/1 = classic, 2 = recommended)")
		fdAlpha = flag.Float64("fd-alpha", 0, "FastFD shrink aggressiveness α in (0,1] for the FD frameworks (0 = classic 1)")
		seed    = flag.Int64("seed", 1, "random seed")
		topK    = flag.Int("top", 5, "singular values to print")
		stats   = flag.Bool("stats", false, "print an instrumentation summary at end of stream")
		traceOn = flag.Bool("trace", false, "trace structural events; print a per-kind summary at end of stream")
		trOut   = flag.String("trace-out", "", "write the trace event ring as JSONL to this file (implies -trace)")
		auditOn = flag.Bool("audit", false, "run an exact shadow window and report the audited cova-err")
		aStride = flag.Int("audit-stride", 0, "audit evaluation cadence in rows (0 = default)")
	)
	flag.Parse()

	if err := run(os.Stdin, os.Stdout, options{
		algo: *algo, winSize: *winSize, useTime: *useTime, every: *every,
		batch: *batch, ell: *ell, b: *b, levels: *levels, rBound: *rBound,
		dB: *dBSplit, fdBuffer: *fdBuf, fdAlpha: *fdAlpha,
		seed: *seed, topK: *topK, stats: *stats,
		trace: *traceOn, traceOut: *trOut, audit: *auditOn, auditStride: *aStride,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "swstream: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	algo           string
	winSize        float64
	useTime        bool
	every          int
	batch          int
	ell, b, levels int
	rBound         float64
	dB             int
	fdBuffer       int
	fdAlpha        float64
	seed           int64
	topK           int
	stats          bool
	trace          bool
	traceOut       string
	audit          bool
	auditStride    int
}

func run(in io.Reader, out io.Writer, opt options) error {
	if opt.every < 1 {
		return fmt.Errorf("every must be ≥ 1")
	}
	if opt.batch < 1 {
		return fmt.Errorf("batch must be ≥ 1")
	}
	cr := csv.NewReader(bufio.NewReaderSize(in, 1<<20))
	cr.ReuseRecord = true

	var (
		sk    core.WindowSketch
		d     int
		spec  window.Spec
		row   []float64
		count int
	)
	if opt.useTime {
		spec = window.TimeSpan(opt.winSize)
	} else {
		spec = window.Seq(int(opt.winSize))
	}

	w := bufio.NewWriter(out)
	defer w.Flush()

	var reg *obs.Registry
	if opt.stats {
		reg = obs.NewRegistry()
	}

	var tr *trace.Tracer
	if opt.trace || opt.traceOut != "" {
		tr = trace.New(8192)
		tr.Enable()
	}
	var aud *audit.Auditor // built with the sketch once d is known

	// Rows accumulate here and flow into the sketch through its bulk
	// ingest path, opt.batch at a time; a pending batch is flushed
	// before every query so summaries always cover the full prefix.
	var (
		pendRows  [][]float64
		pendTimes []float64
		rawSk     core.WindowSketch // undecorated, for audit queries
	)
	flush := func() {
		if len(pendRows) == 0 {
			return
		}
		sk.UpdateBatch(pendRows, pendTimes)
		aud.ObserveBatch(pendRows, pendTimes, func(t float64) *mat.Dense {
			return rawSk.Query(t)
		})
		pendRows = pendRows[:0]
		pendTimes = pendTimes[:0]
	}

	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("read csv: %w", err)
		}
		if len(rec) < 2 {
			return fmt.Errorf("record needs timestamp plus values, got %d fields", len(rec))
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return fmt.Errorf("bad timestamp %q: %w", rec[0], err)
		}
		if sk == nil {
			// First record fixes the dimension and builds the sketch.
			d = len(rec) - 1
			sk, err = buildSketch(opt, spec, d)
			if err != nil {
				return err
			}
			rawSk = sk
			if t, ok := sk.(trace.Traceable); ok {
				t.SetTracer(tr)
			}
			if opt.audit {
				aud = audit.New(audit.Config{Spec: spec, D: d, Stride: opt.auditStride}, reg)
			}
			if opt.stats {
				sk = obs.NewInstrumented(sk, reg)
			}
			row = make([]float64, d)
			fmt.Fprintf(w, "# algo=%s window=%v d=%d\n", sk.Name(), spec, d)
			fmt.Fprintf(w, "%-10s %-12s %-14s %s\n", "row", "sketch-rows", "‖B‖²_F", "top singular values")
		}
		if len(rec)-1 != d {
			return fmt.Errorf("row %d has %d values, want %d", count, len(rec)-1, d)
		}
		for j, f := range rec[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return fmt.Errorf("bad value %q: %w", f, err)
			}
			row[j] = v
		}
		if !opt.useTime {
			t = float64(count)
		}
		r := make([]float64, d)
		copy(r, row)
		pendRows = append(pendRows, r)
		pendTimes = append(pendTimes, t)
		if len(pendRows) >= opt.batch {
			flush()
		}
		count++
		if count%opt.every == 0 {
			flush()
			bm := sk.Query(t)
			svals := mat.SingularValues(bm)
			if len(svals) > opt.topK {
				svals = svals[:opt.topK]
			}
			fmt.Fprintf(w, "%-10d %-12d %-14.4g %.4g\n", count, sk.RowsStored(), bm.FrobeniusSq(), svals)
		}
	}
	if count == 0 {
		return fmt.Errorf("empty input")
	}
	flush()
	if opt.stats {
		printInstrumentation(w, reg, sk)
	}
	if aud != nil {
		printAudit(w, aud, func(t float64) *mat.Dense { return rawSk.Query(t) })
	}
	if opt.trace {
		printTraceSummary(w, tr)
	}
	if opt.traceOut != "" {
		f, err := os.Create(opt.traceOut)
		if err != nil {
			return fmt.Errorf("trace out: %w", err)
		}
		werr := tr.WriteJSONL(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("trace out: %w", werr)
		}
		fmt.Fprintf(w, "# trace: wrote %d events to %s\n", len(tr.Events()), opt.traceOut)
	}
	return nil
}

// printAudit forces a final evaluation at the last observed timestamp
// and reports the audited accuracy: the paper's cova-err, measured
// live against an exact shadow of the very window the sketch served.
func printAudit(w io.Writer, aud *audit.Auditor, query func(t float64) *mat.Dense) {
	res, ok := aud.Evaluate(query)
	st := aud.Status()
	fmt.Fprintf(w, "\n# audit (exact shadow, %d evaluations)\n", st.Evaluations)
	if st.Capped {
		fmt.Fprintf(w, "#   disarmed: window exceeded the %d-row shadow cap\n", aud.Config().MaxShadowRows)
		return
	}
	if !ok {
		fmt.Fprintf(w, "#   no evaluation possible (empty stream?)\n")
		return
	}
	fmt.Fprintf(w, "#   cova-err           %.6g (threshold %g)\n", res.CovaErr, st.Threshold)
	fmt.Fprintf(w, "#   norm ratio R̂       %.4g\n", res.NormRatio)
	fmt.Fprintf(w, "#   shadow rows        %d\n", res.ShadowRows)
	if st.Degraded {
		fmt.Fprintf(w, "#   DEGRADED: cova-err exceeds the threshold\n")
	}
}

// printTraceSummary reports the tracer's per-kind event counts, sorted
// by kind for stable output.
func printTraceSummary(w io.Writer, tr *trace.Tracer) {
	sum := tr.Summarize()
	fmt.Fprintf(w, "\n# trace (%d events, %d in ring of %d)\n", sum.Total, sum.Recorded, sum.Capacity)
	kinds := make([]string, 0, len(sum.Kinds))
	for k := range sum.Kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "#   %-18s %d (last event id %d)\n", k, sum.Kinds[k].Count, sum.Kinds[k].LastSeq)
	}
}

// printInstrumentation reports what the obs decorator recorded over
// the run: row/batch counts, latency totals, and — when the sketch is
// a core.Introspector — its internal stats, sorted by key.
func printInstrumentation(w io.Writer, reg *obs.Registry, sk core.WindowSketch) {
	algo := obs.Labels{"algo": sk.Name()}
	rows := reg.Counter("swsketch_ingest_rows_total", "", algo).Value()
	batches := reg.Counter("swsketch_ingest_batches_total", "", algo).Value()
	upd := reg.Histogram("swsketch_update_seconds", "", algo, nil)
	qry := reg.Histogram("swsketch_query_seconds", "", algo, nil)

	fmt.Fprintf(w, "\n# instrumentation (%s)\n", sk.Name())
	fmt.Fprintf(w, "#   rows ingested      %d (in %d batched calls)\n", rows, batches)
	if c := upd.Count(); c > 0 {
		fmt.Fprintf(w, "#   update calls       %d, total %.3fms, mean %.1fµs\n",
			c, upd.Sum()*1e3, upd.Sum()/float64(c)*1e6)
	}
	if c := qry.Count(); c > 0 {
		fmt.Fprintf(w, "#   query calls        %d, total %.3fms, mean %.1fµs\n",
			c, qry.Sum()*1e3, qry.Sum()/float64(c)*1e6)
	}
	fmt.Fprintf(w, "#   rows stored        %d\n", sk.RowsStored())
	if in, ok := sk.(core.Introspector); ok {
		m := in.Stats()
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "#   internal %-18s %g\n", k, m[k])
		}
	}
}

func buildSketch(opt options, spec window.Spec, d int) (core.WindowSketch, error) {
	fdo := stream.FDOpts{Buffer: opt.fdBuffer, Alpha: opt.fdAlpha}
	if opt.fdBuffer < 0 {
		return nil, fmt.Errorf("-fd-buffer must be ≥ 0, got %d", opt.fdBuffer)
	}
	if opt.fdAlpha < 0 || opt.fdAlpha > 1 {
		return nil, fmt.Errorf("-fd-alpha must be in (0,1] (0 for the default), got %v", opt.fdAlpha)
	}
	isFD := false
	isAMM := false
	switch strings.ToLower(opt.algo) {
	case "lm-fd", "di-fd", "ds-fd":
		isFD = true
	case "lm-amm", "di-amm":
		isFD, isAMM = true, true
	}
	if !isFD && (opt.fdBuffer != 0 || opt.fdAlpha != 0) {
		return nil, fmt.Errorf("-fd-buffer/-fd-alpha apply to the FD and AMM frameworks only, not %q", opt.algo)
	}
	if isAMM && (opt.dB < 1 || opt.dB >= d) {
		return nil, fmt.Errorf("%s requires -d-b in (0,d): the B-side suffix width of the stacked dimension d=%d, got %d", opt.algo, d, opt.dB)
	}
	if !isAMM && opt.dB != 0 {
		return nil, fmt.Errorf("-d-b applies to the paired (amm) frameworks only, not %q", opt.algo)
	}
	switch strings.ToLower(opt.algo) {
	case "swr":
		return core.NewSWR(spec, opt.ell, d, opt.seed), nil
	case "swor":
		return core.NewSWOR(spec, opt.ell, d, opt.seed), nil
	case "swor-all":
		return core.NewSWORAll(spec, opt.ell, d, opt.seed), nil
	case "lm-fd":
		return core.NewLMFDOpts(spec, d, opt.ell, opt.b, fdo), nil
	case "lm-hash":
		return core.NewLMHash(spec, d, opt.ell, opt.b, uint64(opt.seed)), nil
	case "di-fd":
		if opt.useTime {
			return nil, fmt.Errorf("di-fd supports sequence windows only")
		}
		r := opt.rBound
		if r == 0 {
			return nil, fmt.Errorf("di-fd requires -R (the max squared row norm)")
		}
		return core.NewDIFDOpts(core.DIConfig{
			N: int(opt.winSize), R: r, L: opt.levels, Ell: opt.ell, RSlack: 1.01,
		}, d, fdo), nil
	case "ds-fd":
		if opt.useTime {
			return nil, fmt.Errorf("ds-fd supports sequence windows only")
		}
		return core.NewDSFD(core.DSFDConfig{
			N: int(opt.winSize), Ell: opt.ell, R: opt.rBound, RSlack: 1.01, FD: fdo,
		}, d), nil
	case "lm-amm":
		return core.NewLMAMMOpts(spec, d-opt.dB, opt.dB, opt.ell, opt.b, fdo), nil
	case "di-amm":
		if opt.useTime {
			return nil, fmt.Errorf("di-amm supports sequence windows only")
		}
		if opt.rBound == 0 {
			return nil, fmt.Errorf("di-amm requires -R (the max squared row norm)")
		}
		return core.NewDIAMMOpts(core.DIConfig{
			N: int(opt.winSize), R: opt.rBound, L: opt.levels, Ell: opt.ell, RSlack: 1.01,
		}, d-opt.dB, opt.dB, fdo), nil
	case "best":
		return core.NewBest(spec, opt.ell, d), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", opt.algo)
	}
}
