package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func csvStream(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString("0,1,0,2\n")
	}
	return b.String()
}

func baseOpts() options {
	return options{algo: "lm-fd", winSize: 20, every: 10, batch: 7, ell: 8, b: 4, levels: 4, topK: 3, seed: 1}
}

func TestRunStreamsAndReports(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(csvStream(55)), &out, baseOpts()); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "algo=LM-FD") {
		t.Fatalf("missing header:\n%s", s)
	}
	// 55 rows / every 10 = 5 report lines (plus 2 header lines).
	if lines := strings.Count(s, "\n"); lines != 7 {
		t.Fatalf("lines = %d, want 7:\n%s", lines, s)
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"swr", "swor", "swor-all", "lm-fd", "lm-hash", "best"} {
		opt := baseOpts()
		opt.algo = algo
		var out bytes.Buffer
		if err := run(strings.NewReader(csvStream(30)), &out, opt); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	// DI needs R.
	opt := baseOpts()
	opt.algo = "di-fd"
	opt.rBound = 10
	var out bytes.Buffer
	if err := run(strings.NewReader(csvStream(30)), &out, opt); err != nil {
		t.Fatalf("di-fd: %v", err)
	}
}

// TestRunBatchSizesAgree pins the bulk ingest path to row-at-a-time
// feeding: LM-FD is deterministic, so every summary line must match.
func TestRunBatchSizesAgree(t *testing.T) {
	var byRow, byBatch bytes.Buffer
	o1 := baseOpts()
	o1.batch = 1
	oN := baseOpts()
	oN.batch = 64
	if err := run(strings.NewReader(csvStream(55)), &byRow, o1); err != nil {
		t.Fatal(err)
	}
	if err := run(strings.NewReader(csvStream(55)), &byBatch, oN); err != nil {
		t.Fatal(err)
	}
	if byRow.String() != byBatch.String() {
		t.Fatalf("batch=1 and batch=64 outputs differ:\n%s\nvs\n%s", byRow.String(), byBatch.String())
	}
}

func TestRunTimeWindow(t *testing.T) {
	in := "0.5,1,1\n1.5,2,0\n2.5,0,1\n9.5,1,1\n"
	opt := baseOpts()
	opt.useTime = true
	opt.winSize = 3
	opt.every = 2
	var out bytes.Buffer
	if err := run(strings.NewReader(in), &out, opt); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string]struct {
		in  string
		opt options
	}{
		"empty":          {"", baseOpts()},
		"bad timestamp":  {"x,1,2\n", baseOpts()},
		"bad value":      {"0,1,zz\n", baseOpts()},
		"short record":   {"0\n", baseOpts()},
		"ragged":         {"0,1,2\n0,1\n", baseOpts()},
		"unknown algo":   {csvStream(5), func() options { o := baseOpts(); o.algo = "nope"; return o }()},
		"di without R":   {csvStream(5), func() options { o := baseOpts(); o.algo = "di-fd"; return o }()},
		"di time window": {csvStream(5), func() options { o := baseOpts(); o.algo = "di-fd"; o.useTime = true; o.rBound = 1; return o }()},
		"bad every":      {csvStream(5), func() options { o := baseOpts(); o.every = 0; return o }()},
		"bad batch":      {csvStream(5), func() options { o := baseOpts(); o.batch = 0; return o }()},
	}
	for name, tc := range cases {
		var out bytes.Buffer
		if err := run(strings.NewReader(tc.in), &out, tc.opt); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

// variedCSV produces rows with enough variety to force structural
// sketch events (the constant csvStream rows never trigger merges with
// interesting content).
func variedCSV(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,%d,%d,%d\n", i, i%5, (i*3)%7, (i*2)%4+1)
	}
	return b.String()
}

func TestRunTraceSummary(t *testing.T) {
	opt := baseOpts()
	opt.trace = true
	var out bytes.Buffer
	if err := run(strings.NewReader(variedCSV(60)), &out, opt); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# trace (") || !strings.Contains(s, "lm_close") {
		t.Fatalf("missing trace summary:\n%s", s)
	}
}

func TestRunTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	opt := baseOpts()
	opt.traceOut = path
	var out bytes.Buffer
	if err := run(strings.NewReader(variedCSV(60)), &out, opt); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"lm_close"`) {
		t.Fatalf("trace JSONL missing lm_close events:\n%s", data)
	}
}

func TestRunAudit(t *testing.T) {
	opt := baseOpts()
	opt.audit = true
	opt.auditStride = 16
	var out bytes.Buffer
	if err := run(strings.NewReader(variedCSV(60)), &out, opt); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# audit (") || !strings.Contains(s, "cova-err") {
		t.Fatalf("missing audit report:\n%s", s)
	}
}

// TestRunAMMAlgorithms streams stacked [a|b] rows through the paired
// frameworks and checks the standard summary plane works unchanged.
func TestRunAMMAlgorithms(t *testing.T) {
	opt := baseOpts()
	opt.algo = "lm-amm"
	opt.dB = 1
	var out bytes.Buffer
	if err := run(strings.NewReader(variedCSV(40)), &out, opt); err != nil {
		t.Fatalf("lm-amm: %v", err)
	}
	if !strings.Contains(out.String(), "algo=LM-AMM") {
		t.Fatalf("missing LM-AMM header:\n%s", out.String())
	}

	opt = baseOpts()
	opt.algo = "di-amm"
	opt.dB = 1
	opt.rBound = 70
	opt.ell = 8
	out.Reset()
	if err := run(strings.NewReader(variedCSV(40)), &out, opt); err != nil {
		t.Fatalf("di-amm: %v", err)
	}
	if !strings.Contains(out.String(), "algo=DI-AMM") {
		t.Fatalf("missing DI-AMM header:\n%s", out.String())
	}
}

func TestRunAMMFlagErrors(t *testing.T) {
	cases := map[string]options{
		"amm without d-b":  func() options { o := baseOpts(); o.algo = "lm-amm"; return o }(),
		"amm d-b too wide": func() options { o := baseOpts(); o.algo = "lm-amm"; o.dB = 3; return o }(),
		"d-b on lm-fd":     func() options { o := baseOpts(); o.dB = 1; return o }(),
		"di-amm without R": func() options { o := baseOpts(); o.algo = "di-amm"; o.dB = 1; return o }(),
		"di-amm time": func() options {
			o := baseOpts()
			o.algo = "di-amm"
			o.dB = 1
			o.rBound = 60
			o.useTime = true
			return o
		}(),
	}
	for name, opt := range cases {
		var out bytes.Buffer
		if err := run(strings.NewReader(csvStream(5)), &out, opt); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}
