package main

import (
	"fmt"
	"io"

	"swsketch/internal/core"
	"swsketch/internal/data"
	"swsketch/internal/eval"
	"swsketch/internal/stream"
	"swsketch/internal/window"
)

// runAblations exercises the design choices DESIGN.md calls out:
// which streaming sketch backs each framework, what the LM knobs (ℓ
// vs b) buy individually, and what the exponential-histogram norm
// tracker costs the samplers relative to exact tracking.
func runAblations(w io.Writer, sc scaleCfg) {
	ds := sc.seqDataset("SYNTHETIC")
	d := ds.D()
	spec := window.Seq(sc.win)
	cfg := eval.Config{
		Spec:        spec,
		QueryStride: sc.stride,
		Warmup:      sc.win,
		MaxQueries:  sc.maxQ,
	}

	// (a) LM backing sketch at comparable answer quality knobs.
	fmt.Fprintln(w, "== Ablation A: LM framework vs backing sketch (SYNTHETIC) ==")
	lmSpecs := []eval.SketchSpec{
		{Label: "LM-FD", Param: "ell=24,b=8", New: func() core.WindowSketch {
			return core.NewLMFD(spec, d, 24, 8)
		}},
		{Label: "LM-HASH", Param: "ell=512,b=8", New: func() core.WindowSketch {
			return core.NewLMHash(spec, d, 512, 8, 7)
		}},
		{Label: "LM-RP", Param: "ell=256,b=8", New: func() core.WindowSketch {
			return core.NewLMRP(spec, d, 256, 8, 7)
		}},
	}
	writeAblation(w, eval.Evaluate(ds, lmSpecs, cfg))

	// (b) DI backing sketch.
	fmt.Fprintln(w, "== Ablation B: DI framework vs backing sketch (BIBD, R=1) ==")
	bibd := sc.seqDataset("BIBD")
	_, maxSq := bibd.NormRatio()
	diCfgFD := core.DIConfig{N: sc.win, R: maxSq, L: 6, Ell: 96, RSlack: 1.01}
	diCfgBig := core.DIConfig{N: sc.win, R: maxSq, L: 6, Ell: 2048, MinEll: 256, RSlack: 1.01}
	diSpecs := []eval.SketchSpec{
		{Label: "DI-FD", Param: "L=6,ell=96", New: func() core.WindowSketch {
			return core.NewDIFD(diCfgFD, bibd.D())
		}},
		{Label: "DI-ISVD", Param: "L=6,ell=96", New: func() core.WindowSketch {
			return core.NewDIISVD(diCfgFD, bibd.D())
		}},
		{Label: "DI-RP", Param: "L=6,ell=2048", New: func() core.WindowSketch {
			return core.NewDIRP(diCfgBig, bibd.D(), 9)
		}},
		{Label: "DI-HASH", Param: "L=6,ell=2048", New: func() core.WindowSketch {
			return core.NewDIHash(diCfgBig, bibd.D(), 9)
		}},
	}
	writeAblation(w, eval.Evaluate(bibd, diSpecs, cfg))

	// (c) Sampler norm tracker: exact vs exponential histogram.
	fmt.Fprintln(w, "== Ablation C: SWR rescaling mass — exact vs EH tracker (SYNTHETIC) ==")
	ntSpecs := []eval.SketchSpec{
		{Label: "SWR(exact-norms)", Param: "ell=40", New: func() core.WindowSketch {
			return core.NewSWR(spec, 40, d, 21)
		}},
		{Label: "SWR(EH eps=0.1)", Param: "ell=40", New: func() core.WindowSketch {
			s := core.NewSWR(spec, 40, d, 21)
			s.SetNormTracker(window.NewEHNorms(spec, 0.1))
			return s
		}},
		{Label: "SWR(EH eps=0.5)", Param: "ell=40", New: func() core.WindowSketch {
			s := core.NewSWR(spec, 40, d, 21)
			s.SetNormTracker(window.NewEHNorms(spec, 0.5))
			return s
		}},
	}
	writeAblation(w, eval.Evaluate(ds, ntSpecs, cfg))

	// (d') Streaming backbone head-to-head: FD's guarantee vs iSVD's
	// heuristic accuracy, inside the same LM harness (iSVD is not
	// mergeable, so it rides in LM via per-block re-feeding — compare
	// through DI above for the pure framework; here we compare the raw
	// streaming sketches on the full stream as context).
	fmt.Fprintln(w, "== Ablation E: raw streaming sketches on the whole stream (SYNTHETIC) ==")
	rawSpecs := []eval.SketchSpec{
		{Label: "STREAM-FD", Param: "ell=48", New: func() core.WindowSketch {
			return core.NewUnboundedFD(48, d)
		}},
		{Label: "STREAM-ISVD", Param: "ell=24(2x)", New: func() core.WindowSketch {
			return core.NewUnbounded("STREAM-ISVD", d, stream.NewISVD(24, d))
		}},
	}
	wholeCfg := cfg
	wholeCfg.Spec = window.Seq(1 << 30) // effectively unbounded
	writeAblation(w, eval.Evaluate(ds, rawSpecs, wholeCfg))

	// (d) LM knobs: what ℓ and b buy individually.
	fmt.Fprintln(w, "== Ablation D: LM-FD knobs — block size ℓ vs blocks/level b (SYNTHETIC) ==")
	var knobSpecs []eval.SketchSpec
	for _, c := range [][2]int{{16, 4}, {16, 8}, {16, 16}, {8, 8}, {32, 8}} {
		ell, b := c[0], c[1]
		knobSpecs = append(knobSpecs, eval.SketchSpec{
			Label: "LM-FD", Param: fmt.Sprintf("ell=%d,b=%d", ell, b),
			New: func() core.WindowSketch { return core.NewLMFD(spec, d, ell, b) },
		})
	}
	writeAblation(w, eval.Evaluate(ds, knobSpecs, cfg))
}

func writeAblation(w io.Writer, ms []eval.Metrics) {
	fmt.Fprintf(w, "  %-18s %-18s %-10s %-12s %-12s %s\n",
		"algorithm", "param", "max-rows", "avg-err", "max-err", "ns/update")
	for _, m := range ms {
		fmt.Fprintf(w, "  %-18s %-18s %-10d %-12.5g %-12.5g %.0f\n",
			m.Label, m.Param, m.MaxRows, m.AvgErr, m.MaxErr, m.NsPerUpdate)
	}
	fmt.Fprintln(w)
}

// runProjErr is the "different error metrics" study the paper lists as
// future work: the same sketches, scored by rank-k projection error —
// does the sketch's top subspace capture the window? — instead of
// covariance error. Notable inversion to look for: sampling sketches,
// mid-pack on covariance error, can trail badly here because random
// rows need not align with the top subspace, while FD-based sketches
// are engineered to keep it.
func runProjErr(w io.Writer, sc scaleCfg) {
	k := 10
	fmt.Fprintf(w, "== Projection error study (rank k=%d; 1.0 is optimal) ==\n", k)
	for _, name := range []string{"SYNTHETIC", "BIBD", "PAMAP"} {
		ds := sc.seqDataset(name)
		d := ds.D()
		spec := window.Seq(sc.win)
		cfg := eval.Config{
			Spec:        spec,
			QueryStride: sc.stride,
			Warmup:      sc.win,
			MaxQueries:  sc.maxQ,
			SkipTiming:  true,
			ProjK:       k,
		}
		specs := []eval.SketchSpec{
			{Label: "SWR", Param: "ell=80", New: func() core.WindowSketch {
				return core.NewSWR(spec, 80, d, sc.seed)
			}},
			{Label: "SWOR", Param: "ell=80", New: func() core.WindowSketch {
				return core.NewSWOR(spec, 80, d, sc.seed+1)
			}},
			{Label: "LM-FD", Param: "ell=24,b=8", New: func() core.WindowSketch {
				return core.NewLMFD(spec, d, 24, 8)
			}},
		}
		ms := eval.Evaluate(ds, specs, cfg)
		fmt.Fprintf(w, "%s:\n", name)
		fmt.Fprintf(w, "  %-10s %-14s %-14s %s\n", "algo", "proj-err(k)", "cova-err", "max-rows")
		for _, m := range ms {
			fmt.Fprintf(w, "  %-10s %-14.5g %-14.5g %d\n", m.Label, m.AvgProjErr, m.AvgErr, m.MaxRows)
		}
	}
	fmt.Fprintln(w)
}

// runWinSweep demonstrates the headline property — sketch space grows
// polylogarithmically in the window while the exact tracker grows
// linearly — by sweeping window size at fixed sketch configuration.
func runWinSweep(w io.Writer, sc scaleCfg) {
	fmt.Fprintln(w, "== Window sweep: sketch rows vs window size (SYNTHETIC, fixed config) ==")
	fmt.Fprintf(w, "  %-10s %-14s %-14s %-14s %s\n",
		"window", "LM-FD rows", "SWR rows", "DI-FD rows", "exact rows")
	for _, win := range []int{500, 1000, 2000, 4000, 8000, 16000} {
		n := 3 * win
		ds := data.Synthetic(data.SyntheticConfig{
			N: n, D: 40, SignalDim: 20, Seed: uint64(sc.seed) + uint64(win),
		})
		_, maxSq := ds.NormRatio()
		spec := window.Seq(win)
		lm := core.NewLMFD(spec, ds.D(), 24, 8)
		swr := core.NewSWR(spec, 40, ds.D(), sc.seed)
		di := core.NewDIFD(core.DIConfig{N: win, R: maxSq, L: 7, Ell: 64, RSlack: 1.01}, ds.D())
		var lmPeak, swrPeak, diPeak int
		for i, row := range ds.Rows {
			t := float64(i)
			lm.Update(row, t)
			swr.Update(row, t)
			di.Update(row, t)
			if i > win {
				if v := lm.RowsStored(); v > lmPeak {
					lmPeak = v
				}
				if v := swr.RowsStored(); v > swrPeak {
					swrPeak = v
				}
				if v := di.RowsStored(); v > diPeak {
					diPeak = v
				}
			}
		}
		fmt.Fprintf(w, "  %-10d %-14d %-14d %-14d %d\n", win, lmPeak, swrPeak, diPeak, win)
	}
	fmt.Fprintln(w)
}
