// Command swbench regenerates every table and figure of "Matrix
// Sketching Over Sliding Windows" (SIGMOD 2016) on synthetic
// equivalents of the paper's datasets.
//
// Usage:
//
//	swbench [flags] <experiment>
//
// Experiments:
//
//	table2   dataset statistics for sequence-based windows
//	table3   dataset statistics for time-based windows
//	fig3     avg cova-err vs max sketch size (sequence; 3 datasets)
//	fig4     max cova-err vs max sketch size (sequence)
//	fig5     update cost vs max sketch size (sequence)
//	fig6     offline SWR/SWOR error vs ℓ on the skewed PAMAP window
//	fig7     avg cova-err vs max sketch size (time; WIKI, RAIL)
//	fig8     max cova-err vs max sketch size (time)
//	fig9     update cost vs max sketch size (time)
//	ablation design-choice studies (framework × backing sketch,
//	         LM knobs, sampler norm tracker)
//	drift    window sketches vs whole-history streaming FD under
//	         distribution shift (the Section 1 motivation)
//	projerr  rank-k projection-error study (the paper's "different
//	         error metrics" future work)
//	winsweep sketch space vs window size (the sublinearity headline)
//	kernels  compute-layer micro-benchmarks vs naive baselines;
//	         writes BENCH_kernels.json (see -kernels-out)
//	fd       FastFD ingest hot path: ns/update and cova-err across the
//	         (buffer, alpha) grid at ℓ∈{64,256}, d=256; writes
//	         BENCH_fd.json (see -fd-out) and optionally gates the
//	         default config against a baseline artifact (-fd-baseline)
//	dsfd     DS-FD head-to-head vs LM-FD and DI-FD on the fig6 skewed
//	         PAMAP workload at matched ε; writes BENCH_dsfd.json
//	         (see -dsfd-out) and fails if DS-FD breaches its N·R/ℓ
//	         guarantee or uses more space than LM-FD
//	amm      windowed approximate matrix multiplication: LM-AMM and
//	         DI-AMM on a correlated paired stream across the ℓ grid,
//	         correlation error vs the exact-AᵀB oracle; writes
//	         BENCH_amm.json (see -amm-out) and fails if any grid
//	         point breaches its slacked 4/ℓ bound
//	obs      overhead of the observability stack (metrics decorator
//	         and disabled tracer), bare vs wrapped, per-row and
//	         batched ingest, plus the /v2 binary-stream serving path;
//	         writes BENCH_obs.json (see -obs-out)
//	hh       hot-key observability accuracy: the sliding count-min
//	         top-K sidecar vs exact per-tenant counts from a Zipf
//	         load run, plus its ingest-path cost; writes
//	         BENCH_hh.json (see -hh-out) and fails on a recall or
//	         error-bound breach
//	tenants  multi-tenant registry scaling: ingest throughput vs fleet
//	         size (1..1024 tenants, parallel workers) plus spill/
//	         restore cost; writes BENCH_tenants.json (see -tenants-out)
//	load     ingest-plane load: per-request v1 JSON vs the /v2 stream
//	         (NDJSON and binary frames) against a Zipf-skewed tenant
//	         fleet on a self-hosted server; writes BENCH_load.json
//	         (see -load-out) and optionally gates throughput against
//	         a baseline artifact (-load-baseline)
//	verify   run the qualitative shape checks; non-zero exit on DIFF
//	all      everything above plus the qualitative shape checks
//
// Flags select run scale: the default completes in minutes and
// preserves every qualitative conclusion; -full approaches paper scale.
package main

import (
	"flag"
	"fmt"
	"os"

	"swsketch/internal/eval"
)

func main() {
	var (
		full   = flag.Bool("full", false, "run at (slow) paper scale")
		csvOut = flag.Bool("csv", false, "emit CSV series instead of aligned text")
		seed   = flag.Int64("seed", 1, "base random seed")
		n      = flag.Int("n", 0, "override rows per dataset")
		win    = flag.Int("window", 0, "override window size (rows)")
		maxQ   = flag.Int("maxq", 0, "override max evaluated windows per run")
		stride = flag.Int("stride", 0, "override query stride")
		kOut   = flag.String("kernels-out", "BENCH_kernels.json", "output path for the kernels experiment")
		fdOut  = flag.String("fd-out", "BENCH_fd.json", "output path for the fd experiment")
		fdBase = flag.String("fd-baseline", "", "baseline BENCH_fd.json for the fd regression gate (empty disables)")
		dsOut  = flag.String("dsfd-out", "BENCH_dsfd.json", "output path for the dsfd experiment")
		aOut   = flag.String("amm-out", "BENCH_amm.json", "output path for the amm experiment")
		oOut   = flag.String("obs-out", "BENCH_obs.json", "output path for the obs experiment")
		hOut   = flag.String("hh-out", "BENCH_hh.json", "output path for the hh experiment")
		tOut   = flag.String("tenants-out", "BENCH_tenants.json", "output path for the tenants experiment")
		lOut   = flag.String("load-out", "BENCH_load.json", "output path for the load experiment")
		lBase  = flag.String("load-baseline", "", "baseline BENCH_load.json for the load regression gate (empty disables)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: swbench [flags] table2|table3|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ablation|drift|projerr|winsweep|kernels|fd|dsfd|amm|obs|hh|tenants|load|verify|all")
		flag.PrintDefaults()
		os.Exit(2)
	}

	sc := defaultScale()
	if *full {
		sc = fullScale()
	}
	sc.seed = *seed
	if *n > 0 {
		sc.seqN, sc.timeN = *n, *n
	}
	if *win > 0 {
		sc.win = *win
	}
	if *maxQ > 0 {
		sc.maxQ = *maxQ
	}
	if *stride > 0 {
		sc.stride = *stride
	}

	out := os.Stdout
	switch cmd := flag.Arg(0); cmd {
	case "table2":
		printTable2(out, sc)
	case "table3":
		printTable3(out, sc)
	case "fig3", "fig4", "fig5":
		metric := map[string]eval.Metric{"fig3": eval.AvgErr, "fig4": eval.MaxErr, "fig5": eval.UpdateNs}[cmd]
		for _, name := range []string{"SYNTHETIC", "BIBD", "PAMAP"} {
			ms := seqExperiment(sc, name, cmd == "fig5")
			emit(out, *csvOut, fmt.Sprintf("%s %s (sequence window N=%d)", cmd, name, sc.win), cmd+"-"+name, ms, metric)
		}
	case "fig6":
		pts := fig6Experiment(sc)
		eval.WriteOffline(out, "fig6 PAMAP skewed window (offline)", pts)
	case "fig7", "fig8", "fig9":
		metric := map[string]eval.Metric{"fig7": eval.AvgErr, "fig8": eval.MaxErr, "fig9": eval.UpdateNs}[cmd]
		for _, name := range []string{"WIKI", "RAIL"} {
			ms := timeExperiment(sc, name, cmd == "fig9")
			emit(out, *csvOut, fmt.Sprintf("%s %s (time window)", cmd, name), cmd+"-"+name, ms, metric)
		}
	case "ablation":
		runAblations(out, sc)
	case "drift":
		runDrift(out, sc)
	case "projerr":
		runProjErr(out, sc)
	case "winsweep":
		runWinSweep(out, sc)
	case "obs":
		if err := runObs(out, sc, *oOut); err != nil {
			fmt.Fprintf(os.Stderr, "swbench: obs: %v\n", err)
			os.Exit(1)
		}
	case "hh":
		if err := runHH(out, sc, *hOut); err != nil {
			fmt.Fprintf(os.Stderr, "swbench: hh: %v\n", err)
			os.Exit(1)
		}
	case "tenants":
		if err := runTenants(out, sc, *tOut); err != nil {
			fmt.Fprintf(os.Stderr, "swbench: tenants: %v\n", err)
			os.Exit(1)
		}
	case "load":
		if err := runLoad(out, sc, *lOut, *lBase); err != nil {
			fmt.Fprintf(os.Stderr, "swbench: load: %v\n", err)
			os.Exit(1)
		}
	case "kernels":
		if err := runKernels(out, *kOut); err != nil {
			fmt.Fprintf(os.Stderr, "swbench: kernels: %v\n", err)
			os.Exit(1)
		}
	case "fd":
		if err := runFD(out, *fdOut, *fdBase); err != nil {
			fmt.Fprintf(os.Stderr, "swbench: fd: %v\n", err)
			os.Exit(1)
		}
	case "dsfd":
		if err := runDSFD(out, sc, *dsOut); err != nil {
			fmt.Fprintf(os.Stderr, "swbench: dsfd: %v\n", err)
			os.Exit(1)
		}
	case "amm":
		if err := runAMM(out, sc, *aOut); err != nil {
			fmt.Fprintf(os.Stderr, "swbench: amm: %v\n", err)
			os.Exit(1)
		}
	case "verify":
		if failures := runVerify(out, sc); failures > 0 {
			fmt.Fprintf(os.Stderr, "swbench: %d shape check(s) failed\n", failures)
			os.Exit(1)
		}
		fmt.Fprintln(out, "all shape checks passed")
	case "all":
		runAll(sc, *csvOut)
	default:
		fmt.Fprintf(os.Stderr, "swbench: unknown experiment %q\n", cmd)
		os.Exit(2)
	}
}

func emit(out *os.File, csv bool, title, figID string, ms []eval.Metrics, metric eval.Metric) {
	if csv {
		eval.WriteCSVSeries(out, figID, ms)
		return
	}
	eval.WriteFigure(out, title, ms, metric)
}

// runAll executes every experiment, reusing the sequence and time runs
// across the figure triples (the paper's figures 3/4/5 and 7/8/9 are
// three views of the same runs).
func runAll(sc scaleCfg, csv bool) {
	out := os.Stdout
	printTable2(out, sc)
	printTable3(out, sc)

	seqResults := map[string][]eval.Metrics{}
	for _, name := range []string{"SYNTHETIC", "BIBD", "PAMAP"} {
		fmt.Fprintf(os.Stderr, "swbench: running sequence experiment on %s...\n", name)
		seqResults[name] = seqExperiment(sc, name, true)
	}
	for _, fig := range []struct {
		id     string
		metric eval.Metric
	}{{"fig3", eval.AvgErr}, {"fig4", eval.MaxErr}, {"fig5", eval.UpdateNs}} {
		for _, name := range []string{"SYNTHETIC", "BIBD", "PAMAP"} {
			emit(out, csv, fmt.Sprintf("%s %s (sequence window N=%d)", fig.id, name, sc.win),
				fig.id+"-"+name, seqResults[name], fig.metric)
		}
	}

	fmt.Fprintln(os.Stderr, "swbench: running figure 6 (offline skewed window)...")
	eval.WriteOffline(out, "fig6 PAMAP skewed window (offline)", fig6Experiment(sc))

	timeResults := map[string][]eval.Metrics{}
	for _, name := range []string{"WIKI", "RAIL"} {
		fmt.Fprintf(os.Stderr, "swbench: running time experiment on %s...\n", name)
		timeResults[name] = timeExperiment(sc, name, true)
	}
	for _, fig := range []struct {
		id     string
		metric eval.Metric
	}{{"fig7", eval.AvgErr}, {"fig8", eval.MaxErr}, {"fig9", eval.UpdateNs}} {
		for _, name := range []string{"WIKI", "RAIL"} {
			emit(out, csv, fmt.Sprintf("%s %s (time window)", fig.id, name),
				fig.id+"-"+name, timeResults[name], fig.metric)
		}
	}

	summarizeShape(out, seqResults)
}
