package main

import (
	"encoding"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/data"
	"swsketch/internal/window"
)

// dsfdResult is one row of the BENCH_dsfd.json artifact: one sketch at
// one target ε on the Figure 6 workload (the skewed PAMAP sequence
// window), with its measured error, its worst absolute error relative
// to the DS-FD threshold θ = N·R/ℓ, and its space.
type dsfdResult struct {
	Algo string  `json:"algo"`
	Eps  float64 `json:"eps"`
	Ell  int     `json:"ell"`
	// AvgErr / MaxErr are relative covariance errors across the
	// evaluated windows.
	AvgErr float64 `json:"avg_err"`
	MaxErr float64 `json:"max_err"`
	// WorstVsTheta is max over queries of |AᵀA−BᵀB|₂ / (N·R/ℓ) with R
	// the stream's max squared row norm — the DS-FD guarantee says ≤ 1.
	WorstVsTheta float64 `json:"worst_vs_theta"`
	WithinTheta  bool    `json:"within_theta"`
	// PeakRows is the largest RowsStored() observed at a query, and
	// PeakBytes its float64 footprint (rows × d × 8).
	PeakRows  int `json:"peak_rows"`
	PeakBytes int `json:"peak_bytes"`
	// SnapshotBytes is the binary snapshot size after the full stream
	// (0 when the sketch does not marshal).
	SnapshotBytes int `json:"snapshot_bytes"`
	// NsPerUpdate is the amortized per-row ingest cost.
	NsPerUpdate float64 `json:"ns_per_update"`
}

// dsfdArtifact is the BENCH_dsfd.json document.
type dsfdArtifact struct {
	Dataset string       `json:"dataset"`
	N       int          `json:"n"`
	Window  int          `json:"window"`
	D       int          `json:"d"`
	Results []dsfdResult `json:"results"`
}

// dsfdEpsGrid is the matched-ε grid for the head-to-head: each sketch
// is auto-sized for the same target and judged on what it delivers.
var dsfdEpsGrid = []float64{0.05, 0.1, 0.2}

// runDSFD benchmarks DS-FD head-to-head against LM-FD and DI-FD on the
// Figure 6 workload at matched target ε, and writes the artifact. The
// run fails if DS-FD breaches its N·R/ℓ guarantee at any grid point,
// or needs more space than LM-FD at the same ε — the acceptance bar
// for shipping the framework.
func runDSFD(out io.Writer, sc scaleCfg, path string) error {
	ds := sc.seqDataset("PAMAP")
	d := ds.D()
	win := sc.win

	// The DI framework needs the norm profile declared up front; DS-FD
	// discovers it adaptively. Scan once for the head-to-head.
	maxSq, minSq := 0.0, 0.0
	for _, row := range ds.Rows {
		sq := 0.0
		for _, v := range row {
			sq += v * v
		}
		if sq > maxSq {
			maxSq = sq
		}
		if sq > 0 && (minSq == 0 || sq < minSq) {
			minSq = sq
		}
	}
	ratio := 1.0
	if minSq > 0 {
		ratio = maxSq / minSq
	}

	var results []dsfdResult
	for _, eps := range dsfdEpsGrid {
		// All three sketches at one grid point are judged against the
		// same yardstick: DS-FD's threshold θ = N·R/ℓ at the ℓ its
		// auto-sizing picks for this ε.
		dsEll := sketchEll(core.AutoDSFD(win, d, eps))
		theta := float64(win) * maxSq / float64(dsEll)
		sketches := []struct {
			algo string
			mk   func() core.WindowSketch
		}{
			{"DS-FD", func() core.WindowSketch { return core.AutoDSFD(win, d, eps) }},
			{"LM-FD", func() core.WindowSketch { return core.AutoLMFD(window.Seq(win), d, eps) }},
			{"DI-FD", func() core.WindowSketch { return core.AutoDIFD(win, d, eps, maxSq, ratio) }},
		}
		for _, s := range sketches {
			r := benchDSFDPoint(ds, win, sc.stride, sc.maxQ, theta, s.algo, s.mk)
			r.Eps = eps
			results = append(results, r)
			fmt.Fprintf(out, "dsfd eps=%-5v %-6s ell=%-4d err avg %.5f max %.5f  vs-theta %.3f  peak %5d rows (%7d B)  %6.0f ns/update\n",
				eps, r.Algo, r.Ell, r.AvgErr, r.MaxErr, r.WorstVsTheta, r.PeakRows, r.PeakBytes, r.NsPerUpdate)
		}
	}

	art := dsfdArtifact{Dataset: ds.Name, N: ds.N(), Window: win, D: d, Results: results}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d results)\n", path, len(results))

	return checkDSFDAcceptance(results)
}

// benchDSFDPoint streams the dataset through one sketch, evaluating
// the covariance error at the query stride and tracking peak space.
func benchDSFDPoint(ds *data.Dataset, win, stride, maxQ int, theta float64, algo string, mk func() core.WindowSketch) dsfdResult {
	sk := mk()
	spec := window.Seq(win)
	oracle := window.NewExact(spec, ds.D())

	var errSum, errMax, worstTheta float64
	queries, peakRows := 0, 0
	var ingestNs int64
	for i, row := range ds.Rows {
		t0 := time.Now()
		sk.Update(row, ds.Times[i])
		ingestNs += time.Since(t0).Nanoseconds()
		oracle.Update(row, ds.Times[i])
		if i >= win && (i-win)%stride == 0 && queries < maxQ {
			e := oracle.CovaErr(sk.Query(ds.Times[i]))
			errSum += e
			if e > errMax {
				errMax = e
			}
			// Judge the absolute error against the DS-FD threshold
			// θ = N·R/ℓ — the guarantee DS-FD claims and the common
			// yardstick for the head-to-head.
			if vs := e * oracle.FroSq() / theta; vs > worstTheta {
				worstTheta = vs
			}
			if rows := sk.RowsStored(); rows > peakRows {
				peakRows = rows
			}
			queries++
		}
	}

	res := dsfdResult{
		Algo:         algo,
		Ell:          sketchEll(sk),
		MaxErr:       errMax,
		WorstVsTheta: worstTheta,
		WithinTheta:  worstTheta <= 1,
		PeakRows:     peakRows,
		PeakBytes:    peakRows * ds.D() * 8,
		NsPerUpdate:  float64(ingestNs) / float64(ds.N()),
	}
	if queries > 0 {
		res.AvgErr = errSum / float64(queries)
	}
	if m, ok := sk.(encoding.BinaryMarshaler); ok {
		if blob, err := m.MarshalBinary(); err == nil {
			res.SnapshotBytes = len(blob)
		}
	}
	return res
}

// sketchEll pulls the answer-size parameter out of a sketch's Stats
// ("ell" for DS-FD and DI, the per-block size for LM).
func sketchEll(sk core.WindowSketch) int {
	in, ok := sk.(core.Introspector)
	if !ok {
		return 0
	}
	st := in.Stats()
	if v, ok := st["ell"]; ok && v > 0 {
		return int(v)
	}
	return 0
}

// checkDSFDAcceptance enforces the shipping bar: DS-FD within its
// θ guarantee at every grid point, and no more space than LM-FD at
// the same ε.
func checkDSFDAcceptance(results []dsfdResult) error {
	byAlgo := func(eps float64, algo string) *dsfdResult {
		for i := range results {
			if results[i].Eps == eps && results[i].Algo == algo {
				return &results[i]
			}
		}
		return nil
	}
	for _, eps := range dsfdEpsGrid {
		dsfd := byAlgo(eps, "DS-FD")
		lm := byAlgo(eps, "LM-FD")
		if dsfd == nil || lm == nil {
			return fmt.Errorf("dsfd: grid point eps=%v missing a result", eps)
		}
		if !dsfd.WithinTheta {
			return fmt.Errorf("dsfd: eps=%v DS-FD absolute error %.3f× past the N·R/ℓ threshold", eps, dsfd.WorstVsTheta)
		}
		if dsfd.PeakBytes > lm.PeakBytes {
			return fmt.Errorf("dsfd: eps=%v DS-FD peak %d bytes exceeds LM-FD's %d", eps, dsfd.PeakBytes, lm.PeakBytes)
		}
	}
	return nil
}
