package main

import (
	"fmt"
	"io"
	"math"
	"sort"

	"swsketch/internal/core"
	"swsketch/internal/data"
	"swsketch/internal/eval"
	"swsketch/internal/window"
)

// sweep is the shared size-parameter ladder: the paper varies each
// algorithm's knob to trace error/size/time curves.
var (
	samplerElls = []int{10, 20, 40, 80, 160}
	lmConfigs   = [][2]int{{8, 4}, {16, 6}, {24, 8}, {32, 12}, {48, 16}} // (ell, b)
	diEpsLadder = []float64{0.4, 0.2, 0.1, 0.05, 0.025}                  // ε ⇒ L=⌈log₂(R/ε)⌉, ℓ≈4/ε
	bestKs      = []int{8, 16, 32, 64, 128}
)

// seqSpecs builds the sequence-window sketch ladder for one dataset.
func seqSpecs(ds *data.Dataset, win int, seed int64, withDI bool) []eval.SketchSpec {
	spec := window.Seq(win)
	d := ds.D()
	var specs []eval.SketchSpec
	for _, ell := range samplerElls {
		ell := ell
		specs = append(specs,
			eval.SketchSpec{Label: "SWR", Param: fmt.Sprintf("ell=%d", ell), New: func() core.WindowSketch {
				return core.NewSWR(spec, ell, d, seed+int64(ell))
			}},
			eval.SketchSpec{Label: "SWOR", Param: fmt.Sprintf("ell=%d", ell), New: func() core.WindowSketch {
				return core.NewSWOR(spec, ell, d, seed+1000+int64(ell))
			}},
			eval.SketchSpec{Label: "SWOR-ALL", Param: fmt.Sprintf("ell=%d", ell), New: func() core.WindowSketch {
				return core.NewSWORAll(spec, ell, d, seed+2000+int64(ell))
			}},
		)
	}
	for _, cfg := range lmConfigs {
		ell, b := cfg[0], cfg[1]
		specs = append(specs, eval.SketchSpec{
			Label: "LM-FD", Param: fmt.Sprintf("ell=%d,b=%d", ell, b),
			New: func() core.WindowSketch { return core.NewLMFD(spec, d, ell, b) },
		})
	}
	if withDI {
		ratio, maxSq := ds.NormRatio()
		avgSq := datasetAvgSqNorm(ds)
		for _, eps := range diEpsLadder {
			l := diLevels(ratio, eps, maxSq/avgSq)
			ell := int(4 / eps)
			cfg := core.DIConfig{N: win, R: maxSq, L: l, Ell: ell, RSlack: 1.01}
			specs = append(specs, eval.SketchSpec{
				Label: "DI-FD", Param: fmt.Sprintf("eps=%g,L=%d,ell=%d", eps, l, ell),
				New: func() core.WindowSketch { return core.NewDIFD(cfg, d) },
			})
		}
	}
	return specs
}

// timeSpecs builds the time-window sketch ladder (no DI: sequence only).
func timeSpecs(d int, delta float64, seed int64) []eval.SketchSpec {
	spec := window.TimeSpan(delta)
	var specs []eval.SketchSpec
	for _, ell := range samplerElls {
		ell := ell
		specs = append(specs,
			eval.SketchSpec{Label: "SWR", Param: fmt.Sprintf("ell=%d", ell), New: func() core.WindowSketch {
				return core.NewSWR(spec, ell, d, seed+int64(ell))
			}},
			eval.SketchSpec{Label: "SWOR", Param: fmt.Sprintf("ell=%d", ell), New: func() core.WindowSketch {
				return core.NewSWOR(spec, ell, d, seed+1000+int64(ell))
			}},
			eval.SketchSpec{Label: "SWOR-ALL", Param: fmt.Sprintf("ell=%d", ell), New: func() core.WindowSketch {
				return core.NewSWORAll(spec, ell, d, seed+2000+int64(ell))
			}},
		)
	}
	for _, cfg := range lmConfigs {
		ell, b := cfg[0], cfg[1]
		specs = append(specs, eval.SketchSpec{
			Label: "LM-FD", Param: fmt.Sprintf("ell=%d,b=%d", ell, b),
			New: func() core.WindowSketch { return core.NewLMFD(spec, d, ell, b) },
		})
	}
	return specs
}

// seqExperiment runs the shared Figures 3/4/5 evaluation for one
// sequence dataset and returns the combined metrics (including BEST).
func seqExperiment(sc scaleCfg, name string, withTiming bool) []eval.Metrics {
	ds := sc.seqDataset(name)
	cfg := eval.Config{
		Spec:        window.Seq(sc.win),
		QueryStride: sc.stride,
		Warmup:      sc.win,
		MaxQueries:  sc.maxQ,
		SkipTiming:  !withTiming,
	}
	withDI := true // DI applies to all sequence datasets (costly on big R)
	ms := eval.Evaluate(ds, seqSpecs(ds, sc.win, sc.seed, withDI), cfg)
	ms = append(ms, eval.EvaluateBestRanks(ds, bestKs, cfg)...)
	return ms
}

// timeExperiment runs the Figures 7/8/9 evaluation for one time dataset.
func timeExperiment(sc scaleCfg, name string, withTiming bool) []eval.Metrics {
	ds, delta := sc.timeDataset(name)
	cfg := eval.Config{
		Spec:        window.TimeSpan(delta),
		QueryStride: sc.stride,
		Warmup:      sc.win,
		MaxQueries:  sc.maxQ,
		SkipTiming:  !withTiming,
	}
	ms := eval.Evaluate(ds, timeSpecs(ds.D(), delta, sc.seed), cfg)
	ms = append(ms, eval.EvaluateBestRanks(ds, bestKs, cfg)...)
	return ms
}

// fig6Experiment reproduces the offline skewed-window sampling study.
func fig6Experiment(sc scaleCfg) []eval.OfflinePoint {
	ds := sc.seqDataset("PAMAP")
	from := sc.pamapSkewAt()
	to := from + sc.win/2
	if to > ds.N() {
		to = ds.N()
	}
	ells := []int{10, 20, 40, 80, 160, 320}
	return eval.OfflineSampling(ds, from, to, ells, sc.trials6, sc.seed)
}

// printTable2 regenerates Table 2 (sequence datasets).
func printTable2(w io.Writer, sc scaleCfg) {
	fmt.Fprintln(w, "== Table 2: data sets for sequence-based windows ==")
	fmt.Fprintf(w, "  %-11s %-10s %-6s %-8s %s\n", "dataset", "rows n", "d", "N", "ratio R")
	for _, name := range []string{"SYNTHETIC", "BIBD", "PAMAP"} {
		ds := sc.seqDataset(name)
		ratio, _ := ds.NormRatio()
		fmt.Fprintf(w, "  %-11s %-10d %-6d %-8d %.4g\n", ds.Name, ds.N(), ds.D(), sc.win, ratio)
	}
	fmt.Fprintln(w)
}

// printTable3 regenerates Table 3 (time datasets), including the
// realised mean and max window occupancy.
func printTable3(w io.Writer, sc scaleCfg) {
	fmt.Fprintln(w, "== Table 3: data sets for time-based windows ==")
	fmt.Fprintf(w, "  %-8s %-10s %-6s %-10s %-10s %-10s %s\n",
		"dataset", "rows n", "d", "Δ", "avg N_w", "max N_w", "ratio R")
	for _, name := range []string{"WIKI", "RAIL"} {
		ds, delta := sc.timeDataset(name)
		avgW, maxW := windowOccupancy(ds, delta)
		ratio, _ := ds.NormRatio()
		fmt.Fprintf(w, "  %-8s %-10d %-6d %-10.4g %-10.0f %-10d %.4g\n",
			ds.Name, ds.N(), ds.D(), delta, avgW, maxW, ratio)
	}
	fmt.Fprintln(w)
}

// windowOccupancy sweeps the stream once, reporting the mean and max
// number of rows inside the time window.
func windowOccupancy(ds *data.Dataset, delta float64) (avg float64, max int) {
	lo := 0
	var sum float64
	for i := range ds.Times {
		for ds.Times[lo] <= ds.Times[i]-delta {
			lo++
		}
		n := i - lo + 1
		sum += float64(n)
		if n > max {
			max = n
		}
	}
	if len(ds.Times) > 0 {
		avg = sum / float64(len(ds.Times))
	}
	return avg, max
}

// summarizeShape prints the qualitative checks of Section 8 that the
// reproduction is expected to preserve (who wins where), returning the
// number of failed checks. Comparisons are made at matched sketch
// size: for each algorithm we take the error of its largest
// configuration not exceeding the reference size (the figures' x-axis
// is size, so unmatched comparisons are meaningless).
func summarizeShape(w io.Writer, seq map[string][]eval.Metrics) int {
	series := func(ds, label string) []eval.Metrics {
		var pts []eval.Metrics
		for _, m := range seq[ds] {
			if m.Label == label {
				pts = append(pts, m)
			}
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].MaxRows < pts[j].MaxRows })
		return pts
	}
	errAtSize := func(pts []eval.Metrics, size int) float64 {
		if len(pts) == 0 {
			return math.Inf(1)
		}
		best := pts[0].AvgErr
		for _, p := range pts {
			if p.MaxRows <= size {
				best = p.AvgErr
			}
		}
		return best
	}
	// beats reports whether algorithm a has lower error than b at a's
	// largest configuration size.
	beats := func(ds, a, b string) bool {
		pa, pb := series(ds, a), series(ds, b)
		if len(pa) == 0 || len(pb) == 0 {
			return false
		}
		ref := pa[len(pa)-1]
		return ref.AvgErr < errAtSize(pb, ref.MaxRows)
	}

	fmt.Fprintln(w, "== Shape checks (paper's qualitative findings, matched sizes) ==")
	failures := 0
	check := func(desc string, ok bool) {
		status := "OK  "
		if !ok {
			status = "DIFF"
			failures++
		}
		fmt.Fprintf(w, "  [%s] %s\n", status, desc)
	}
	check("DI-FD beats LM-FD on BIBD (R=1)", beats("BIBD", "DI-FD", "LM-FD"))
	check("LM-FD beats DI-FD on PAMAP (huge R)", beats("PAMAP", "LM-FD", "DI-FD"))
	check("SWR beats SWOR on PAMAP", beats("PAMAP", "SWR", "SWOR"))
	check("SWOR beats SWR on SYNTHETIC", beats("SYNTHETIC", "SWOR", "SWR"))
	check("SWOR-ALL beats SWOR on SYNTHETIC", beats("SYNTHETIC", "SWOR-ALL", "SWOR"))
	check("BEST is the lower envelope on SYNTHETIC",
		errAtSize(series("SYNTHETIC", "BEST"), 1<<30) <=
			math.Min(errAtSize(series("SYNTHETIC", "LM-FD"), 1<<30),
				errAtSize(series("SYNTHETIC", "SWR"), 1<<30)))
	fmt.Fprintln(w)
	return failures
}

// runVerify executes the sequence experiments, the shape checks, and
// the Figure 6 anomaly check; it returns the failure count for a
// CI-style exit code.
func runVerify(w io.Writer, sc scaleCfg) int {
	seqResults := map[string][]eval.Metrics{}
	for _, name := range []string{"SYNTHETIC", "BIBD", "PAMAP"} {
		seqResults[name] = seqExperiment(sc, name, false)
	}
	failures := summarizeShape(w, seqResults)

	// Figure 6's anomaly: per-row SWOR error grows past its minimum.
	pts := fig6Experiment(sc)
	minErr, last := math.Inf(1), 0.0
	for _, p := range pts {
		if p.SWORPerRow < minErr {
			minErr = p.SWORPerRow
		}
		last = p.SWORPerRow
	}
	ok := last > minErr*1.05
	status := "OK  "
	if !ok {
		status = "DIFF"
		failures++
	}
	fmt.Fprintf(w, "  [%s] Figure 6: per-row SWOR error grows with ℓ on the skewed window\n", status)
	// SWR must decrease monotonically-ish (last below first).
	okSWR := pts[len(pts)-1].SWR < pts[0].SWR
	status = "OK  "
	if !okSWR {
		status = "DIFF"
		failures++
	}
	fmt.Fprintf(w, "  [%s] Figure 6: SWR error decreases with ℓ\n", status)
	return failures
}

// datasetAvgSqNorm returns the mean squared row norm.
func datasetAvgSqNorm(ds *data.Dataset) float64 {
	if ds.N() == 0 {
		return 1
	}
	var sum float64
	for _, r := range ds.Rows {
		for _, v := range r {
			sum += v * v
		}
	}
	return sum / float64(ds.N())
}
