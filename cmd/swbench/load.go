package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"swsketch/internal/core"
	"swsketch/internal/load"
	"swsketch/internal/serve"
	"swsketch/internal/window"
)

// loadHeadroom is the soft regression gate: a mode may lose up to this
// fraction of its baseline rows/s before the gate trips.
const loadHeadroom = 0.20

// runLoad measures the ingest plane end to end: a self-hosted server,
// a Zipf-skewed tenant fleet, and the three wire generations side by
// side. The v1 baseline pays one JSON request per update (the shape
// v1 clients actually send); the stream modes run pipelined blocks. The headline: the binary stream should
// carry an order of magnitude more rows/s than per-request JSON while
// holding p99 under 50 ms.
func runLoad(out io.Writer, sc scaleCfg, path, basePath string) error {
	const d = 16
	tenants := 2000
	rows := sc.seqN * 2
	if rows < 20000 {
		rows = 20000
	}
	if rows > 400000 {
		rows = 400000
	}
	if tenants > rows/64 {
		tenants = rows / 64
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	sk := core.NewLMFD(window.Seq(1024), d, 8, 4)
	srv := &http.Server{Handler: serve.NewServer(sk, d).Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	cfg := load.Config{
		BaseURL: base, Tenants: tenants, D: d, Window: 1024,
		Workers: 4, ZipfS: 1.2, Seed: sc.seed,
	}
	fmt.Fprintf(out, "ingest-plane load (%d tenants, %d rows, zipf %.2f)\n",
		tenants, rows, cfg.ZipfS)
	fmt.Fprintf(out, "%8s %6s %12s %10s %10s %8s\n",
		"mode", "batch", "rows/sec", "p50 ms", "p99 ms", "errors")

	modes := []struct {
		mode    string
		batch   int
		workers int
	}{
		{load.ModeV1, 1, 4}, // one JSON request per update — the v1 shape
		// The server ingests serially per tenant; a couple of pipelined
		// streams saturate it without queueing the tail into the tens of
		// milliseconds.
		{load.ModeNDJSON, 128, 2},
		{load.ModeFrames, 256, 2},
	}
	var results []load.Result
	var v1Rate float64
	for _, m := range modes {
		cfg.Mode, cfg.Batch, cfg.Rows, cfg.Workers = m.mode, m.batch, rows, m.workers
		if m.mode == load.ModeV1 {
			// The baseline pays a request per row; a fraction of the
			// budget measures it just as well.
			cfg.Rows = rows / 8
		}
		res, err := load.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", m.mode, err)
		}
		if res.Errors > 0 {
			return fmt.Errorf("%s: %d failed blocks", m.mode, res.Errors)
		}
		if m.mode == load.ModeV1 {
			v1Rate = res.RowsPerSec
		} else if v1Rate > 0 {
			res.SpeedupVsV1 = res.RowsPerSec / v1Rate
		}
		results = append(results, res)
		fmt.Fprintf(out, "%8s %6d %12.0f %10.2f %10.2f %8d",
			res.Mode, res.Batch, res.RowsPerSec, res.P50Ms, res.P99Ms, res.Errors)
		if res.SpeedupVsV1 > 0 {
			fmt.Fprintf(out, "  %.1fx vs v1", res.SpeedupVsV1)
		}
		fmt.Fprintln(out)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d results)\n", path, len(results))

	// Acceptance shape: the binary stream sustains ≥10× the v1 baseline
	// with a sub-50ms tail.
	final := results[len(results)-1]
	if final.SpeedupVsV1 < 10 {
		fmt.Fprintf(out, "WARN: frames speedup %.1fx below the 10x target\n", final.SpeedupVsV1)
	}
	if final.P99Ms >= 50 {
		fmt.Fprintf(out, "WARN: frames p99 %.1fms above the 50ms target\n", final.P99Ms)
	}

	if basePath != "" {
		return gateLoad(out, results, basePath)
	}
	return nil
}

// gateLoad compares a run against a committed baseline artifact and
// fails on a >loadHeadroom throughput regression in any mode.
func gateLoad(out io.Writer, results []load.Result, basePath string) error {
	data, err := os.ReadFile(basePath)
	if err != nil {
		return fmt.Errorf("load baseline: %w", err)
	}
	var baseline []load.Result
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("load baseline: %w", err)
	}
	byMode := make(map[string]load.Result, len(baseline))
	for _, b := range baseline {
		byMode[b.Mode] = b
	}
	var failed []string
	for _, r := range results {
		b, ok := byMode[r.Mode]
		if !ok || b.RowsPerSec <= 0 {
			continue
		}
		ratio := r.RowsPerSec / b.RowsPerSec
		verdict := "ok"
		if ratio < 1-loadHeadroom {
			verdict = "REGRESSED"
			failed = append(failed, r.Mode)
		}
		fmt.Fprintf(out, "gate %-8s %12.0f vs baseline %12.0f rows/s (%.2fx) %s\n",
			r.Mode, r.RowsPerSec, b.RowsPerSec, ratio, verdict)
	}
	if len(failed) > 0 {
		return fmt.Errorf("load gate: %v regressed more than %.0f%%", failed, loadHeadroom*100)
	}
	return nil
}
