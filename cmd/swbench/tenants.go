package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"swsketch/internal/registry"
)

// tenantResult is one row of the BENCH_tenants.json artifact: ingest
// throughput through the sharded registry at one fleet size, with the
// per-tenant lock overhead relative to the single-tenant baseline.
type tenantResult struct {
	Tenants        int     `json:"tenants"`
	Workers        int     `json:"workers"`
	RowsTotal      int     `json:"rows_total"`
	NsPerRow       float64 `json:"ns_per_row"`
	RowsPerSec     float64 `json:"rows_per_sec"`
	VsSingleTenant float64 `json:"ns_per_row_vs_single"` // ratio to the 1-tenant run
	SpillNs        float64 `json:"spill_ns_per_tenant,omitempty"`
	RestoreNs      float64 `json:"restore_ns_per_tenant,omitempty"`
}

// runTenants measures how registry ingest scales with fleet size: a
// fixed total row budget is streamed into 1..k tenants from
// GOMAXPROCS×2 workers (each worker owns a disjoint tenant stripe, the
// acquire/release path included), plus a spill/restore cost probe at
// the largest fleet. The headline: throughput should hold roughly flat
// as the fleet grows — the striped locks and per-tenant mutexes keep
// cross-tenant ingest parallel — so ns/row vs the single-tenant
// baseline stays near 1.
func runTenants(out io.Writer, sc scaleCfg, path string) error {
	total := sc.seqN * 4
	if total > 200000 {
		total = 200000
	}
	if total < 4096 {
		total = 4096
	}
	const d = 16
	const ell = 16
	const batch = 32
	workers := runtime.GOMAXPROCS(0) * 2

	rng := rand.New(rand.NewSource(sc.seed))
	rows := make([][]float64, total)
	for i := range rows {
		r := make([]float64, d)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		rows[i] = r
	}

	fleets := []int{1, 8, 64, 256, 1024}
	cfg := registry.Config{Framework: "lm-fd", Size: 512, D: d, Ell: ell, B: 8}

	fmt.Fprintf(out, "tenant scaling (rows=%d, d=%d, ell=%d, workers=%d, batch=%d)\n",
		total, d, ell, workers, batch)
	fmt.Fprintf(out, "%8s %10s %12s %14s %10s\n", "tenants", "workers", "ns/row", "rows/sec", "vs 1")

	var results []tenantResult
	var baseline float64
	for _, fleet := range fleets {
		if fleet > total/batch {
			continue // each tenant needs at least one batch
		}
		r, err := registry.New()
		if err != nil {
			return err
		}
		tns := make([]*registry.Tenant, fleet)
		for i := range tns {
			tn, err := r.Create(fmt.Sprintf("t%04d", i), cfg)
			if err != nil {
				return err
			}
			tns[i] = tn
		}
		perTenant := total / fleet
		perTenant -= perTenant % batch

		runtime.GC()
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < fleet; i += workers {
					tn := tns[i]
					off := (i * 131) % (total - perTenant + 1)
					for b := 0; b < perTenant; b += batch {
						if err := tn.Acquire(); err != nil {
							return
						}
						lastT, _ := tn.Clock()
						times := make([]float64, batch)
						for k := range times {
							times[k] = lastT + float64(k) + 1
						}
						tn.Sketch().UpdateBatch(rows[off+b:off+b+batch], times)
						tn.Commit(batch, times[batch-1])
						tn.Release()
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)

		ingested := perTenant * fleet
		nsRow := float64(elapsed.Nanoseconds()) / float64(ingested)
		if fleet == 1 {
			baseline = nsRow
		}
		ratio := 0.0
		if baseline > 0 {
			ratio = nsRow / baseline
		}
		res := tenantResult{
			Tenants:        fleet,
			Workers:        workers,
			RowsTotal:      ingested,
			NsPerRow:       nsRow,
			RowsPerSec:     float64(ingested) / elapsed.Seconds(),
			VsSingleTenant: ratio,
		}

		// At the largest fleet, probe the evict/restore cycle cost.
		if fleet == fleets[len(fleets)-1] || fleet == total/batch {
			if sNs, rNs, err := probeSpillCost(cfg, tns[:min(fleet, 64)]); err == nil {
				res.SpillNs, res.RestoreNs = sNs, rNs
			}
		}
		results = append(results, res)
		fmt.Fprintf(out, "%8d %10d %12.1f %14.0f %9.2fx\n",
			res.Tenants, res.Workers, res.NsPerRow, res.RowsPerSec, res.VsSingleTenant)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d results)\n", path, len(results))
	return nil
}

// probeSpillCost measures the evict-to-disk and restore-from-disk
// round trip per tenant, amortised over a sample of the fleet. It
// rebuilds the sample in a TTL registry over a temp spill dir, copies
// each tenant's state via snapshot, sweeps everything out, and times
// the spill and the restoring Acquire separately.
func probeSpillCost(cfg registry.Config, sample []*registry.Tenant) (spillNs, restoreNs float64, err error) {
	dir, err := os.MkdirTemp("", "swbench-tenants-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)

	now := time.Unix(0, 0)
	r, err := registry.New(
		registry.WithSpillDir(dir),
		registry.WithEvictTTL(time.Second),
		registry.WithClock(func() time.Time { return now }),
	)
	if err != nil {
		return 0, 0, err
	}
	clones := make([]*registry.Tenant, 0, len(sample))
	for i, src := range sample {
		tn, err := r.Create(fmt.Sprintf("probe%04d", i), cfg)
		if err != nil {
			return 0, 0, err
		}
		if err := copyTenantState(src, tn); err != nil {
			return 0, 0, err
		}
		clones = append(clones, tn)
	}

	now = now.Add(time.Hour)
	start := time.Now()
	if n := r.Sweep(); n != len(clones) {
		return 0, 0, fmt.Errorf("swept %d of %d", n, len(clones))
	}
	spillNs = float64(time.Since(start).Nanoseconds()) / float64(len(clones))

	start = time.Now()
	for _, tn := range clones {
		if err := tn.Acquire(); err != nil {
			return 0, 0, err
		}
		tn.Release()
	}
	restoreNs = float64(time.Since(start).Nanoseconds()) / float64(len(clones))
	return spillNs, restoreNs, nil
}

// copyTenantState moves src's sketch state into dst via the snapshot
// round trip (both tenants were built from the same config).
func copyTenantState(src, dst *registry.Tenant) error {
	if err := src.Acquire(); err != nil {
		return err
	}
	m, ok := src.Raw().(interface{ MarshalBinary() ([]byte, error) })
	if !ok {
		src.Release()
		return fmt.Errorf("sketch lacks snapshot support")
	}
	blob, err := m.MarshalBinary()
	lastT, _ := src.Clock()
	n := src.Updates()
	src.Release()
	if err != nil {
		return err
	}
	if err := dst.Acquire(); err != nil {
		return err
	}
	defer dst.Release()
	u, ok := dst.Raw().(interface{ UnmarshalBinary([]byte) error })
	if !ok {
		return fmt.Errorf("sketch lacks snapshot support")
	}
	if err := u.UnmarshalBinary(blob); err != nil {
		return err
	}
	dst.Commit(int(n), lastT)
	return nil
}
