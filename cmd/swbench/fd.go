package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"swsketch/internal/mat"
	"swsketch/internal/stream"
)

// fdResult is one row of the BENCH_fd.json artifact: the FastFD ingest
// hot path at one (ℓ, b, α) point — wall-clock per row plus the
// measured covariance error against the exact stream, judged against
// Liberty's 2/ℓ bound.
type fdResult struct {
	Ell    int     `json:"ell"`
	D      int     `json:"d"`
	Buffer int     `json:"buffer"`
	Alpha  float64 `json:"alpha"`
	// NsPerUpdate is the amortized per-row ingest cost.
	NsPerUpdate float64 `json:"ns_per_update"`
	// CovaErr is the relative covariance error ‖AᵀA−BᵀB‖₂/‖A‖²_F.
	CovaErr float64 `json:"cova_err"`
	// Bound is the FD guarantee 2/ℓ in the same relative units.
	Bound       float64 `json:"bound"`
	WithinBound bool    `json:"within_bound"`
	// SpeedupVsClassic compares against the (b=1, α=1) run at the same
	// ℓ — the headline number for the doubled-buffer discipline.
	SpeedupVsClassic float64 `json:"speedup_vs_classic"`
	// Regime names the shrink's eigenproblem side: "n-side" solves the
	// m×m Gram of the working buffer (m = b·ℓ rows), "d-side" the d×d
	// covariance. Once b·ℓ ≥ d the shrink flips to d-side, which is why
	// b=4 at ℓ=64, d=256 is slower than b=2 despite shrinking less
	// often.
	Regime string `json:"regime"`
}

// fdArtifact is the BENCH_fd.json document.
type fdArtifact struct {
	// KernelsAccelerated records whether the AVX2+FMA assembly kernels
	// were active — numbers from different backends are not comparable.
	KernelsAccelerated bool       `json:"kernels_accelerated"`
	Results            []fdResult `json:"results"`
}

// fdGrid is the shipped sweep: every (b, α) combination the facade
// exposes as a recommendation, at the two sketch sizes the acceptance
// bar names.
var (
	fdElls    = []int{64, 256}
	fdBuffers = []int{1, 2, 4}
	fdAlphas  = []float64{0.25, 0.5, 1}
)

const fdDim = 256

// runFD benchmarks the FastFD ingest hot path across the (b, α) grid
// and writes the artifact to path. When baselinePath names a previous
// artifact, the default configuration (b=2, α=1) is additionally gated
// against it: a regression past 1.2× the baseline ns/update is an
// error (the CI contract; compared per ℓ, same-backend runs only).
func runFD(out io.Writer, path, baselinePath string) error {
	baseline, err := loadFDBaseline(baselinePath)
	if err != nil {
		return err
	}

	var results []fdResult
	// The classic cadence is every row's speedup denominator, so
	// measure it first.
	classic := map[int]fdResult{}
	for _, ell := range fdElls {
		classic[ell] = benchFDPoint(ell, 1, 1)
	}
	for _, ell := range fdElls {
		for _, b := range fdBuffers {
			for _, alpha := range fdAlphas {
				r := classic[ell]
				if b != 1 || alpha != 1 {
					r = benchFDPoint(ell, b, alpha)
				}
				r.SpeedupVsClassic = classic[ell].NsPerUpdate / r.NsPerUpdate
				results = append(results, r)
				fmt.Fprintf(out, "fd ell=%-4d b=%d alpha=%-4v %10.0f ns/update  err %.5f (bound %.5f)  %5.2fx  %s\n",
					r.Ell, r.Buffer, r.Alpha, r.NsPerUpdate, r.CovaErr, r.Bound, r.SpeedupVsClassic, r.Regime)
				if !r.WithinBound {
					return fmt.Errorf("fd: b=%d alpha=%v ell=%d error %v exceeds bound %v",
						b, alpha, ell, r.CovaErr, r.Bound)
				}
			}
		}
	}

	art := fdArtifact{KernelsAccelerated: mat.KernelsAccelerated(), Results: results}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d results)\n", path, len(results))

	return checkFDRegression(out, baseline, results)
}

// benchFDPoint times one configuration and measures its accuracy on
// the same deterministic Gaussian stream.
func benchFDPoint(ell, b int, alpha float64) fdResult {
	rng := rand.New(rand.NewSource(97))
	m := b * ell
	n := 3 * m
	if n < 2048 {
		n = 2048
	}
	a := mat.NewDense(n, fdDim)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}

	opts := stream.FDOpts{Buffer: b, Alpha: alpha}
	// Warm-up pass: page in the buffers and exercise at least one full
	// shrink cycle before the timed run.
	warm := stream.NewFDOpts(ell, fdDim, opts)
	for i := 0; i < m+1 && i < n; i++ {
		warm.Update(a.Row(i))
	}

	best := 0.0
	var f *stream.FD
	for rep := 0; rep < 3; rep++ {
		f = stream.NewFDOpts(ell, fdDim, opts)
		start := time.Now()
		for i := 0; i < n; i++ {
			f.Update(a.Row(i))
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(n)
		if best == 0 || ns < best {
			best = ns
		}
	}

	errRel := mat.CovarianceError(a.Gram(), a.FrobeniusSq(), f.Matrix())
	bound := 2 / float64(ell)
	regime := "n-side"
	if m >= fdDim {
		regime = "d-side"
	}
	return fdResult{
		Ell: ell, D: fdDim, Buffer: b, Alpha: alpha,
		NsPerUpdate: best,
		CovaErr:     errRel,
		Bound:       bound,
		WithinBound: errRel <= bound,
		Regime:      regime,
	}
}

// loadFDBaseline reads a previous artifact for the regression gate;
// an empty path disables the gate, a missing or foreign-backend file
// just produces a notice (first run, or numbers that are not
// comparable).
func loadFDBaseline(path string) (*fdArtifact, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var art fdArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("fd baseline %s: %w", path, err)
	}
	return &art, nil
}

// checkFDRegression gates the default configuration (b=2, α=1) against
// the baseline artifact at each ℓ: past 1.2× the baseline ns/update
// the run fails.
func checkFDRegression(out io.Writer, baseline *fdArtifact, results []fdResult) error {
	if baseline == nil {
		fmt.Fprintln(out, "fd: no baseline artifact, regression gate skipped")
		return nil
	}
	if baseline.KernelsAccelerated != mat.KernelsAccelerated() {
		fmt.Fprintln(out, "fd: baseline ran on a different kernel backend, regression gate skipped")
		return nil
	}
	find := func(rs []fdResult, ell int) *fdResult {
		for i := range rs {
			if rs[i].Ell == ell && rs[i].Buffer == 2 && rs[i].Alpha == 1 {
				return &rs[i]
			}
		}
		return nil
	}
	for _, ell := range fdElls {
		base, cur := find(baseline.Results, ell), find(results, ell)
		if base == nil || cur == nil {
			continue
		}
		ratio := cur.NsPerUpdate / base.NsPerUpdate
		fmt.Fprintf(out, "fd: default config ell=%d %0.0f ns vs baseline %0.0f ns (%.2fx)\n",
			ell, cur.NsPerUpdate, base.NsPerUpdate, ratio)
		if ratio > 1.2 {
			return fmt.Errorf("fd: default config (b=2, alpha=1) at ell=%d regressed %.2fx past baseline (limit 1.2x)", ell, ratio)
		}
	}
	return nil
}
