package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/load"
	"swsketch/internal/obs/hh"
	"swsketch/internal/serve"
	"swsketch/internal/window"
)

// hhRecallTop is how many of the hottest tenants the accuracy gate
// checks, and hhRecallMin how many of them the sidecar must surface.
const (
	hhRecallTop = 8
	hhRecallMin = 7
)

// hhOverheadWarnPct is the soft ceiling on the sidecar's per-batch
// ingest cost; beyond it the run prints a WARN (timing noise on
// shared runners makes a hard gate flaky).
const hhOverheadWarnPct = 5.0

// hhEntry is one observed-vs-exact row of the BENCH_hh.json artifact.
type hhEntry struct {
	Tenant      string `json:"tenant"`
	Estimated   uint64 `json:"estimated"`
	Exact       int    `json:"exact"`
	Bound       uint64 `json:"bound"`
	WithinBound bool   `json:"within_bound"`
}

// hhResult is the BENCH_hh.json artifact: the hot-key sidecar's
// observed top-K against the load driver's exact per-tenant counts,
// plus the sidecar's cost on the ingest hot path.
type hhResult struct {
	Tenants       int     `json:"tenants"`
	Rows          int     `json:"rows"`
	ZipfS         float64 `json:"zipf_s"`
	WindowSeconds float64 `json:"window_seconds"`
	K             int     `json:"k"`
	Width         int     `json:"width"`
	Depth         int     `json:"depth"`
	Epsilon       float64 `json:"epsilon"`

	RecallTopN      int       `json:"recall_top_n"`
	RecallHits      int       `json:"recall_hits"`
	TopK            []hhEntry `json:"topk"`
	TopKShare       float64   `json:"topk_share"`
	ZipfSEst        float64   `json:"zipf_s_est"`
	DistinctExact   int       `json:"distinct_tenants_exact"`
	DistinctEst     float64   `json:"distinct_tenants_est"`
	BoundViolations int       `json:"bound_violations"`

	OverheadBareNsPerRow float64 `json:"overhead_bare_ns_per_row"`
	OverheadInstNsPerRow float64 `json:"overhead_instrumented_ns_per_row"`
	OverheadPct          float64 `json:"overhead_pct"`
}

// runHH closes the hot-key observability loop: a self-hosted server
// with the sidecar attached ingests a Zipf-skewed fleet's traffic
// while the load driver keeps exact per-tenant counts, then the
// /debug/hotkeys snapshot is judged against that ground truth —
// top-hhRecallTop recall, every estimate inside its ε·N count-min
// bound — and the sidecar's cost on the ingest hot path is measured
// with paired trials. Recall or bound failures exit non-zero; the CI
// job runs this step continue-on-error so the gate is advisory there.
func runHH(out io.Writer, sc scaleCfg, path string) error {
	const d = 16
	tenants := 512
	rows := sc.seqN * 2
	if rows < 40000 {
		rows = 40000
	}
	if rows > 200000 {
		rows = 200000
	}
	const zipfS = 1.3

	// The sidecar's window dwarfs the run so nothing decays away
	// mid-comparison; width 1024 gives ε = e/1024 ≈ 0.27% of the
	// shard's windowed weight as the permitted overcount.
	hot := hh.New(hh.Config{Window: 10 * time.Minute, K: 16})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	sk := core.NewLMFD(window.Seq(1024), d, 8, 4)
	srv := &http.Server{Handler: serve.NewServer(sk, d, serve.WithHotKeys(hot)).Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	fmt.Fprintf(out, "hot-key accuracy (%d tenants, %d rows, zipf %.2f, binary stream)\n",
		tenants, rows, zipfS)
	res, err := load.Run(load.Config{
		BaseURL: base, Mode: load.ModeFrames, Tenants: tenants, D: d, Window: 1024,
		Rows: rows, Batch: 64, Workers: 4, ZipfS: zipfS, Seed: sc.seed,
		TrackTenants: true,
	})
	if err != nil {
		return err
	}
	if res.Errors > 0 {
		return fmt.Errorf("load: %d failed blocks", res.Errors)
	}

	httpRes, err := http.Get(base + "/debug/hotkeys")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(httpRes.Body)
	httpRes.Body.Close()
	if err != nil {
		return err
	}
	snap, err := hh.DecodeSnapshot(body)
	if err != nil {
		return fmt.Errorf("decode /debug/hotkeys: %w", err)
	}

	// Rank the ground truth. Ties at the boundary are real under Zipf
	// (several tenants share the rank-8 count), so a hit is "at least
	// as hot as the true rank-N tenant", not strict set membership.
	type rank struct {
		id   string
		rows int
	}
	ranking := make([]rank, 0, len(res.TenantRows))
	for id, n := range res.TenantRows {
		ranking = append(ranking, rank{id, n})
	}
	sort.Slice(ranking, func(i, j int) bool {
		if ranking[i].rows != ranking[j].rows {
			return ranking[i].rows > ranking[j].rows
		}
		return ranking[i].id < ranking[j].id
	})
	top := hhRecallTop
	if top > len(ranking) {
		top = len(ranking)
	}
	threshold := ranking[top-1].rows

	hits, violations := 0, 0
	entries := make([]hhEntry, 0, len(snap.TopK))
	fmt.Fprintf(out, "%12s %12s %12s %10s %8s\n", "tenant", "estimated", "exact", "bound", "ok")
	for i, e := range snap.TopK {
		exact := res.TenantRows[e.Tenant]
		within := e.Rows >= uint64(exact) && e.Rows-uint64(exact) <= e.Bound
		if i < top {
			if exact >= threshold {
				hits++
			}
			if !within {
				violations++
			}
			fmt.Fprintf(out, "%12s %12d %12d %10d %8v\n", e.Tenant, e.Rows, exact, e.Bound, within)
		}
		entries = append(entries, hhEntry{
			Tenant: e.Tenant, Estimated: e.Rows, Exact: exact,
			Bound: e.Bound, WithinBound: within,
		})
	}
	distinct := len(res.TenantRows)
	fmt.Fprintf(out, "recall %d/%d, top-K share %.1f%%, zipf fit %.2f (cfg %.2f), distinct est %.0f (exact %d)\n",
		hits, top, 100*snap.TopKShare, snap.ZipfS, zipfS, snap.DistinctTenants, distinct)

	bare, inst := hhOverhead(sc, d)
	overheadPct := 100 * (inst/bare - 1)
	fmt.Fprintf(out, "ingest overhead: bare %.1f ns/row, with sidecar %.1f ns/row (%+.2f%%)\n",
		bare, inst, overheadPct)
	if overheadPct > hhOverheadWarnPct {
		fmt.Fprintf(out, "WARN: sidecar overhead %.2f%% above the %.0f%% target\n",
			overheadPct, hhOverheadWarnPct)
	}

	result := hhResult{
		Tenants: tenants, Rows: res.Rows, ZipfS: zipfS,
		WindowSeconds: snap.WindowSeconds, K: snap.K, Width: snap.Width,
		Depth: snap.Depth, Epsilon: snap.Epsilon,
		RecallTopN: top, RecallHits: hits, TopK: entries,
		TopKShare: snap.TopKShare, ZipfSEst: snap.ZipfS,
		DistinctExact: distinct, DistinctEst: snap.DistinctTenants,
		BoundViolations:      violations,
		OverheadBareNsPerRow: bare, OverheadInstNsPerRow: inst,
		OverheadPct: overheadPct,
	}
	data, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)

	if hits < hhRecallMin {
		return fmt.Errorf("hot-key recall %d/%d below the %d/%d gate", hits, top, hhRecallMin, hhRecallTop)
	}
	if violations > 0 {
		return fmt.Errorf("%d top-%d estimate(s) outside the ε·N count-min bound", violations, top)
	}
	return nil
}

// hhOverhead measures what the sidecar adds to a batched ingest loop:
// per 256-row batch, one Touch (the registry hook) plus one
// ObserveIngest (the commit hook) against a live sidecar, versus the
// same sketch work alone. Trials are paired back to back and the
// median ratio reported, as in runObs.
func hhOverhead(sc scaleCfg, d int) (bareNs, instNs float64) {
	const n = 50000
	const batch = 256
	rng := rand.New(rand.NewSource(sc.seed))
	rows := make([][]float64, n)
	for i := range rows {
		r := make([]float64, d)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		rows[i] = r
	}
	times := make([]float64, n)
	for i := range times {
		times[i] = float64(i)
	}
	// A Zipf-skewed tenant per batch, fixed across trials.
	z := rand.NewZipf(rng, 1.3, 1, 255)
	ids := make([]string, (n+batch-1)/batch)
	for i := range ids {
		ids[i] = fmt.Sprintf("load-%04d", z.Uint64())
	}

	run := func(hot *hh.Sidecar) float64 {
		sk := core.NewLMFD(window.Seq(sc.win), d, 16, 8)
		runtime.GC()
		start := time.Now()
		for i, b := 0, 0; i < n; i, b = i+batch, b+1 {
			j := i + batch
			if j > n {
				j = n
			}
			hot.Touch(ids[b])
			sk.UpdateBatch(rows[i:j], times[i:j])
			hot.ObserveIngest(ids[b], j-i, 8*d*(j-i))
		}
		return float64(time.Since(start).Nanoseconds()) / float64(n)
	}

	bares := make([]float64, obsTrials)
	ratios := make([]float64, obsTrials)
	for t := range bares {
		b := run(nil) // nil sidecar: the hooks are nil-safe no-ops
		w := run(hh.New(hh.Config{Window: 10 * time.Minute}))
		bares[t] = b
		ratios[t] = w / b
	}
	sort.Float64s(bares)
	sort.Float64s(ratios)
	return bares[obsTrials/2], bares[obsTrials/2] * ratios[obsTrials/2]
}
