package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"swsketch/internal/mat"
)

// kernelResult is one row of the BENCH_kernels.json artifact: a
// compute-layer operation timed against a straightforward scalar
// baseline at a fixed shape.
type kernelResult struct {
	Op              string  `json:"op"`
	Shape           string  `json:"shape"`
	NsPerOp         float64 `json:"ns_per_op"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

// runKernels benchmarks the internal/mat kernels (blocked, tiled,
// parallel) against local naive references and writes the results to
// path as JSON, echoing an aligned table to out. The shape list covers
// the regimes the acceptance bar names: large sketch-scale products
// (2048×256), the ℓ×d shapes FD shrinks produce, and small ℓ×ℓ
// matrices where the kernels must not regress.
func runKernels(out io.Writer, path string) error {
	rng := rand.New(rand.NewSource(42))
	var results []kernelResult

	record := func(op, shape string, opt, base float64) {
		r := kernelResult{Op: op, Shape: shape, NsPerOp: opt, BaselineNsPerOp: base, Speedup: base / opt}
		results = append(results, r)
		fmt.Fprintf(out, "%-6s %-14s %12.0f ns/op %12.0f ns/op (naive) %6.2fx\n",
			r.Op, r.Shape, r.NsPerOp, r.BaselineNsPerOp, r.Speedup)
	}

	type mulShape struct{ m, k, n int }
	for _, s := range []mulShape{
		{2048, 256, 256}, // sketch-scale product, the headline shape
		{256, 2048, 256}, // deep inner dimension
		{24, 256, 256},   // Uᵀ·sub of an FD shrink (ℓ×n by n×d)
		{64, 64, 64},     // moderate square
		{24, 24, 24},     // small ℓ×ℓ: must not regress
	} {
		a := randMat(rng, s.m, s.k)
		b := randMat(rng, s.k, s.n)
		opt := benchNs(func() { mat.Mul(a, b) })
		base := benchNs(func() { naiveMul(a, b) })
		record("Mul", fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n), opt, base)
	}

	type gramShape struct{ r, c int }
	for _, s := range []gramShape{
		{2048, 256}, // window-scale AᵀA
		{24, 256},   // short-and-wide sketch buffer
		{24, 24},    // small ℓ×ℓ: must not regress
	} {
		a := randMat(rng, s.r, s.c)
		opt := benchNs(func() { a.Gram() })
		base := benchNs(func() { naiveGram(a) })
		record("Gram", fmt.Sprintf("%dx%d", s.r, s.c), opt, base)
	}

	for _, s := range []gramShape{
		{24, 256},  // FD shrink's BBᵀ at typical ℓ, d
		{64, 2048}, // wider buffer
	} {
		a := randMat(rng, s.r, s.c)
		opt := benchNs(func() { a.GramT() })
		base := benchNs(func() { naiveGramT(a) })
		record("GramT", fmt.Sprintf("%dx%d", s.r, s.c), opt, base)
	}

	for _, n := range []int{256, 4096} {
		a := randVec(rng, n)
		b := randVec(rng, n)
		opt := benchNs(func() { mat.Dot(a, b) })
		base := benchNs(func() { naiveDot(a, b) })
		record("Dot", fmt.Sprintf("%d", n), opt, base)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d results)\n", path, len(results))
	return nil
}

// benchNs times one op: warm up, then repeat for ≥200ms of wall time
// per measurement and take the best of three measurements (min filters
// scheduler noise, which matters for the small shapes judged on a 5%
// regression bar).
func benchNs(f func()) float64 {
	f() // warm-up: pool start, cache residency
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		iters := 0
		start := time.Now()
		for time.Since(start) < 200*time.Millisecond {
			f()
			iters++
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best
}

func randMat(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.NewDense(r, c)
	d := m.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return m
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// The naive references below mirror the scalar triple loops the
// compute layer replaced; they are the "before" in the speedup column.

func naiveMul(a, b *mat.Dense) *mat.Dense {
	m, k := a.Dims()
	_, n := b.Dims()
	out := mat.NewDense(m, n)
	for i := 0; i < m; i++ {
		oi := out.Row(i)
		ai := a.Row(i)
		for p := 0; p < k; p++ {
			v := ai[p]
			if v == 0 {
				continue
			}
			bp := b.Row(p)
			for j := range oi {
				oi[j] += v * bp[j]
			}
		}
	}
	return out
}

func naiveGram(a *mat.Dense) *mat.Dense {
	r, c := a.Dims()
	g := mat.NewDense(c, c)
	for i := 0; i < r; i++ {
		ri := a.Row(i)
		for p, v := range ri {
			if v == 0 {
				continue
			}
			gp := g.Row(p)
			for j, w := range ri {
				gp[j] += v * w
			}
		}
	}
	return g
}

func naiveGramT(a *mat.Dense) *mat.Dense {
	r, _ := a.Dims()
	g := mat.NewDense(r, r)
	for i := 0; i < r; i++ {
		ri := a.Row(i)
		gi := g.Row(i)
		for j := 0; j < r; j++ {
			gi[j] = naiveDot(ri, a.Row(j))
		}
	}
	return g
}

func naiveDot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}
