package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"

	"swsketch/internal/data"
	"swsketch/internal/eval"
	"swsketch/internal/mat"
)

func TestDiLevels(t *testing.T) {
	// BIBD regime: ratio 1, eps 0.1 → small L (floored at 3).
	if l := diLevels(1, 0.1, 1); l < 3 || l > 5 {
		t.Fatalf("ratio=1 L=%d", l)
	}
	// PAMAP regime: huge ratio, clamped by the mass-skew bound.
	l := diLevels(2.6e5, 0.1, 1000)
	want := int(math.Ceil(math.Log2(64 * 1000)))
	if l != want {
		t.Fatalf("heavy-tail L=%d, want mass clamp %d", l, want)
	}
	// Without skew the theory value applies up to the hard clamp.
	if l := diLevels(1e9, 0.01, 1e12); l != 22 {
		t.Fatalf("hard clamp L=%d", l)
	}
	// Degenerate ratio below 1 is treated as 1.
	if l := diLevels(0.5, 0.4, 1); l != 3 {
		t.Fatalf("degenerate ratio L=%d", l)
	}
}

func TestWindowOccupancy(t *testing.T) {
	ds := &data.Dataset{
		Rows:  [][]float64{{1}, {1}, {1}, {1}},
		Times: []float64{0, 1, 2, 10},
	}
	avg, max := windowOccupancy(ds, 2.5)
	if max != 3 {
		t.Fatalf("max occupancy = %d, want 3", max)
	}
	if avg <= 1 || avg > 3 {
		t.Fatalf("avg occupancy = %v", avg)
	}
	empty := &data.Dataset{}
	if a, m := windowOccupancy(empty, 1); a != 0 || m != 0 {
		t.Fatal("empty occupancy should be zero")
	}
}

func TestScaleDatasets(t *testing.T) {
	sc := defaultScale()
	sc.seqN, sc.timeN = 500, 500
	sc.win = 100
	for _, name := range []string{"SYNTHETIC", "BIBD", "PAMAP"} {
		ds := sc.seqDataset(name)
		if ds.N() != 500 {
			t.Fatalf("%s rows = %d", name, ds.N())
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, name := range []string{"WIKI", "RAIL"} {
		ds, delta := sc.timeDataset(name)
		if ds.N() != 500 || delta <= 0 {
			t.Fatalf("%s rows=%d delta=%v", name, ds.N(), delta)
		}
	}
	full := fullScale()
	if full.seqN <= sc.seqN {
		t.Fatal("full scale should exceed default")
	}
}

func TestUnknownDatasetPanics(t *testing.T) {
	sc := defaultScale()
	for _, f := range []func(){
		func() { sc.seqDataset("NOPE") },
		func() { sc.timeDataset("NOPE") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSummarizeShapeCountsFailures(t *testing.T) {
	// Synthetic metrics where every check passes.
	mk := func(label string, rows int, err float64) eval.Metrics {
		return eval.Metrics{Label: label, MaxRows: rows, AvgErr: err}
	}
	good := map[string][]eval.Metrics{
		"BIBD": {
			mk("DI-FD", 100, 0.05), mk("LM-FD", 100, 0.10),
		},
		"PAMAP": {
			mk("LM-FD", 100, 0.02), mk("DI-FD", 100, 0.20),
			mk("SWR", 100, 0.03), mk("SWOR", 100, 0.06),
		},
		"SYNTHETIC": {
			mk("SWOR", 100, 0.04), mk("SWR", 100, 0.06),
			mk("SWOR-ALL", 100, 0.02),
			mk("BEST", 100, 0.001), mk("LM-FD", 100, 0.05),
		},
	}
	var buf bytes.Buffer
	if got := summarizeShape(&buf, good); got != 0 {
		t.Fatalf("failures = %d on all-good metrics:\n%s", got, buf.String())
	}
	// Flip one comparison: DI-FD worse than LM-FD on BIBD.
	good["BIBD"] = []eval.Metrics{mk("DI-FD", 100, 0.20), mk("LM-FD", 100, 0.10)}
	buf.Reset()
	if got := summarizeShape(&buf, good); got != 1 {
		t.Fatalf("failures = %d, want 1:\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "DIFF") {
		t.Fatal("DIFF marker missing")
	}
}

func TestFig6ExperimentShape(t *testing.T) {
	sc := defaultScale()
	sc.seqN, sc.win, sc.trials6 = 4000, 400, 3
	pts := fig6Experiment(sc)
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.SWR < 0 || p.SWORPerRow < 0 {
			t.Fatalf("negative error %+v", p)
		}
	}
}

func TestDatasetAvgSqNorm(t *testing.T) {
	ds := &data.Dataset{Rows: [][]float64{{3, 4}, {0, 0}}, Times: []float64{0, 1}}
	if got := datasetAvgSqNorm(ds); got != 12.5 {
		t.Fatalf("avg sq norm = %v, want 12.5", got)
	}
	if got := datasetAvgSqNorm(&data.Dataset{}); got != 1 {
		t.Fatalf("empty avg = %v, want fallback 1", got)
	}
}

func TestExperimentsSmoke(t *testing.T) {
	// A micro-scale pass through every experiment runner keeps the
	// harness itself under test (the full scale runs via the binary).
	sc := defaultScale()
	sc.seqN, sc.timeN = 2500, 2500
	sc.win = 300
	sc.stride = 1200
	sc.maxQ = 2
	sc.trials6 = 2

	for _, name := range []string{"SYNTHETIC", "BIBD", "PAMAP"} {
		ms := seqExperiment(sc, name, false)
		if len(ms) == 0 {
			t.Fatalf("%s: no metrics", name)
		}
		labels := map[string]bool{}
		for _, m := range ms {
			labels[m.Label] = true
			if m.Queries == 0 && m.Label != "BEST" {
				t.Fatalf("%s/%s: no queries", name, m.Label)
			}
		}
		for _, want := range []string{"SWR", "SWOR", "SWOR-ALL", "LM-FD", "DI-FD", "BEST"} {
			if !labels[want] {
				t.Fatalf("%s: missing %s", name, want)
			}
		}
	}
	for _, name := range []string{"WIKI", "RAIL"} {
		if ms := timeExperiment(sc, name, false); len(ms) == 0 {
			t.Fatalf("%s: no metrics", name)
		}
	}

	var buf bytes.Buffer
	printTable2(&buf, sc)
	printTable3(&buf, sc)
	if !strings.Contains(buf.String(), "Table 2") || !strings.Contains(buf.String(), "Table 3") {
		t.Fatal("table output missing")
	}
	runDrift(&buf, sc)
	if !strings.Contains(buf.String(), "Drift study") {
		t.Fatal("drift output missing")
	}
	runProjErr(&buf, sc)
	if !strings.Contains(buf.String(), "Projection error study") {
		t.Fatal("projerr output missing")
	}
}

func TestBenchFDPoint(t *testing.T) {
	// One fast configuration end to end: timing positive, accuracy
	// within the bound, regime classified by m = b·ℓ against d.
	r := benchFDPoint(8, 2, 0.5)
	if r.NsPerUpdate <= 0 {
		t.Fatalf("ns/update = %v", r.NsPerUpdate)
	}
	if !r.WithinBound || r.CovaErr > r.Bound {
		t.Fatalf("error %v exceeds bound %v", r.CovaErr, r.Bound)
	}
	if r.Regime != "n-side" {
		t.Fatalf("ell=8 b=2 d=256 regime %q, want n-side", r.Regime)
	}
}

func TestFDRegressionGate(t *testing.T) {
	mk := func(ns64, ns256 float64) []fdResult {
		return []fdResult{
			{Ell: 64, Buffer: 2, Alpha: 1, NsPerUpdate: ns64},
			{Ell: 256, Buffer: 2, Alpha: 1, NsPerUpdate: ns256},
		}
	}
	base := &fdArtifact{KernelsAccelerated: mat.KernelsAccelerated(), Results: mk(1000, 2000)}
	var buf bytes.Buffer
	// Within 1.2x: passes.
	if err := checkFDRegression(&buf, base, mk(1100, 2200)); err != nil {
		t.Fatalf("within-limit run failed gate: %v", err)
	}
	// Past 1.2x: fails.
	if err := checkFDRegression(&buf, base, mk(1300, 2000)); err == nil {
		t.Fatal("1.3x regression passed the gate")
	}
	// Different backend: skipped.
	other := &fdArtifact{KernelsAccelerated: !mat.KernelsAccelerated(), Results: mk(1, 1)}
	if err := checkFDRegression(&buf, other, mk(1300, 2600)); err != nil {
		t.Fatalf("foreign-backend baseline not skipped: %v", err)
	}
	// No baseline: skipped.
	if err := checkFDRegression(&buf, nil, mk(1300, 2600)); err != nil {
		t.Fatalf("nil baseline not skipped: %v", err)
	}
}

func TestLoadFDBaseline(t *testing.T) {
	if art, err := loadFDBaseline(""); err != nil || art != nil {
		t.Fatalf("empty path: %v, %v", art, err)
	}
	if art, err := loadFDBaseline(t.TempDir() + "/missing.json"); err != nil || art != nil {
		t.Fatalf("missing file: %v, %v", art, err)
	}
	p := t.TempDir() + "/base.json"
	if err := os.WriteFile(p, []byte(`{"kernels_accelerated":true,"results":[{"ell":64}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	art, err := loadFDBaseline(p)
	if err != nil || art == nil || len(art.Results) != 1 || !art.KernelsAccelerated {
		t.Fatalf("good file: %+v, %v", art, err)
	}
	if err := os.WriteFile(p, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFDBaseline(p); err == nil {
		t.Fatal("corrupt baseline accepted")
	}
}

func TestRunTenantsSmoke(t *testing.T) {
	sc := defaultScale()
	sc.seqN = 1024 // micro scale: total clamps to the 4096-row floor
	out := t.TempDir() + "/BENCH_tenants.json"
	var buf bytes.Buffer
	if err := runTenants(&buf, sc, out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tenant scaling") {
		t.Fatalf("missing header:\n%s", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var results []tenantResult
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) < 3 {
		t.Fatalf("results = %d, want >= 3 fleet sizes", len(results))
	}
	if results[0].Tenants != 1 || results[0].VsSingleTenant != 1 {
		t.Fatalf("baseline row %+v", results[0])
	}
	for _, r := range results {
		if r.NsPerRow <= 0 || r.RowsPerSec <= 0 || r.RowsTotal <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
}
