package main

import (
	"fmt"
	"io"

	"swsketch/internal/core"
	"swsketch/internal/data"
	"swsketch/internal/mat"
	"swsketch/internal/stream"
	"swsketch/internal/window"
)

// runDrift quantifies the paper's motivating argument (Section 1): on
// a stream whose distribution shifts, a whole-history streaming sketch
// keeps averaging over stale regimes while a sliding-window sketch of
// the same size tracks the recent one. The stream concatenates two
// SYNTHETIC phases with disjoint signal subspaces; error against the
// *window* is reported before and after the shift.
func runDrift(w io.Writer, sc scaleCfg) {
	d := sc.synthD
	half := sc.seqN / 2
	phase1 := data.Synthetic(data.SyntheticConfig{N: half, D: d, SignalDim: d / 4, Seed: uint64(sc.seed) + 10})
	phase2 := data.Synthetic(data.SyntheticConfig{N: half, D: d, SignalDim: d / 4, Seed: uint64(sc.seed) + 11})
	ds := &data.Dataset{Name: "DRIFT", Rows: append(phase1.Rows, phase2.Rows...)}
	ds.Times = make([]float64, ds.N())
	for i := range ds.Times {
		ds.Times[i] = float64(i)
	}

	spec := window.Seq(sc.win)
	sketches := []struct {
		label string
		sk    core.WindowSketch
	}{
		{"LM-FD (window)", core.NewLMFD(spec, d, 24, 8)},
		{"SWR (window)", core.NewSWR(spec, 40, d, sc.seed)},
		{"STREAM-FD (whole history)", core.NewUnboundedFD(24, d)},
		{"STREAM-FD-big (whole history)", core.NewUnbounded("STREAM-FD-big", d, stream.NewFD(200, d))},
	}

	oracle := window.NewExact(spec, d)
	type point struct {
		row  int
		errs []float64
	}
	var series []point
	for i, row := range ds.Rows {
		t := ds.Times[i]
		oracle.Update(row, t)
		for _, s := range sketches {
			s.sk.Update(row, t)
		}
		if i > sc.win && i%(sc.seqN/12) == 0 {
			gram := oracle.Gram()
			froSq := oracle.FroSq()
			p := point{row: i}
			for _, s := range sketches {
				p.errs = append(p.errs, mat.CovarianceError(gram, froSq, s.sk.Query(t)))
			}
			series = append(series, p)
		}
	}

	fmt.Fprintf(w, "== Drift study: window sketches vs whole-history streaming FD ==\n")
	fmt.Fprintf(w, "   (distribution shifts at row %d; errors are vs the sliding window)\n", half)
	fmt.Fprintf(w, "  %-8s", "row")
	for _, s := range sketches {
		fmt.Fprintf(w, " %-30s", s.label)
	}
	fmt.Fprintln(w)
	for _, p := range series {
		marker := " "
		if p.row >= half && p.row < half+sc.seqN/12 {
			marker = "*" // first checkpoint after the shift
		}
		fmt.Fprintf(w, "  %-7d%s", p.row, marker)
		for _, e := range p.errs {
			fmt.Fprintf(w, " %-30.5f", e)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
