package main

import (
	"encoding"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"

	"swsketch/internal/core"
	"swsketch/internal/data"
	"swsketch/internal/eval"
	"swsketch/internal/window"
)

// ammResult is one row of the BENCH_amm.json artifact: one paired
// framework at one co-sketch size ℓ on the correlated paired stream,
// judged on the windowed-AMM correlation error against the exact-AᵀB
// oracle.
type ammResult struct {
	Algo string `json:"algo"`
	Ell  int    `json:"ell"`
	// AvgErr / MaxErr are correlation errors ‖AᵀB−XᵀY‖₂/(‖A‖_F·‖B‖_F)
	// across the evaluated windows.
	AvgErr float64 `json:"avg_err"`
	MaxErr float64 `json:"max_err"`
	// Bound is the grid point's acceptance gate: the COD stream-level
	// correlation bound 4/ℓ (from the certified shrink charge
	// Σδ ≤ 2(‖A‖²_F+‖B‖²_F)/ℓ, at balanced side masses) times the
	// framework's documented window-maintenance slack.
	Bound       float64 `json:"bound"`
	WithinBound bool    `json:"within_bound"`
	// PeakRows is the largest RowsStored() observed, PeakBytes its
	// float64 footprint (rows × d × 8).
	PeakRows  int `json:"peak_rows"`
	PeakBytes int `json:"peak_bytes"`
	// SnapshotBytes is the binary snapshot size after the full stream.
	SnapshotBytes int `json:"snapshot_bytes"`
	// NsPerUpdate is the amortized per-row ingest cost.
	NsPerUpdate float64 `json:"ns_per_update"`
	Queries     int     `json:"queries"`
}

// ammArtifact is the BENCH_amm.json document.
type ammArtifact struct {
	Dataset string      `json:"dataset"`
	N       int         `json:"n"`
	Window  int         `json:"window"`
	DA      int         `json:"d_a"`
	DB      int         `json:"d_b"`
	Results []ammResult `json:"results"`
}

// ammEllGrid sweeps the per-block co-sketch size.
var ammEllGrid = []int{16, 32, 64}

// ammSlack is the per-framework window-maintenance slack multiplying
// the 4/ℓ stream bound. LM answers with a logarithmic stack of COD
// blocks whose shrink charges add across levels (measured ≈1.2× on
// this workload, shipped with headroom); DI answers with a dyadic
// block union that over-covers the window cutoff, inflating the
// numerator by the level fan-out (measured ≈3–4×, shipped with
// headroom).
var ammSlack = map[string]float64{
	"LM-AMM": 3,
	"DI-AMM": 8,
}

// ammDataset generates the correlated paired stream: both sides load
// on a shared k-dimensional latent factor (plus 25% isotropic noise),
// so AᵀB carries real cross-correlation structure for the sketches to
// preserve — independent sides would make even the zero answer look
// good on the correlation metric.
func ammDataset(n, dA, dB, k int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	gA := make([][]float64, k)
	gB := make([][]float64, k)
	for f := 0; f < k; f++ {
		gA[f] = make([]float64, dA)
		gB[f] = make([]float64, dB)
		for j := range gA[f] {
			gA[f][j] = rng.NormFloat64()
		}
		for j := range gB[f] {
			gB[f][j] = rng.NormFloat64()
		}
	}
	ds := &data.Dataset{Name: "PAIRED", Rows: make([][]float64, n), Times: make([]float64, n)}
	z := make([]float64, k)
	for i := 0; i < n; i++ {
		for f := range z {
			z[f] = rng.NormFloat64()
		}
		row := make([]float64, dA+dB)
		for j := 0; j < dA; j++ {
			v := 0.0
			for f := 0; f < k; f++ {
				v += z[f] * gA[f][j]
			}
			row[j] = v + 0.25*rng.NormFloat64()
		}
		for j := 0; j < dB; j++ {
			v := 0.0
			for f := 0; f < k; f++ {
				v += z[f] * gB[f][j]
			}
			row[dA+j] = v + 0.25*rng.NormFloat64()
		}
		ds.Rows[i] = row
		ds.Times[i] = float64(i)
	}
	return ds
}

// runAMM benchmarks the paired frameworks on the correlated stream
// across the ℓ grid against the exact-AᵀB oracle, and writes the
// artifact. The run fails if any grid point's worst correlation error
// breaches its bound — the acceptance bar for shipping the windowed
// AMM subsystem.
func runAMM(out io.Writer, sc scaleCfg, path string) error {
	const dA, dB, latentK = 12, 8, 4
	d := dA + dB
	ds := ammDataset(sc.seqN, dA, dB, latentK, sc.seed)
	win := sc.win

	// DI declares the norm profile up front; scan once.
	maxSq := 0.0
	for _, row := range ds.Rows {
		sq := 0.0
		for _, v := range row {
			sq += v * v
		}
		if sq > maxSq {
			maxSq = sq
		}
	}

	var results []ammResult
	for _, ell := range ammEllGrid {
		ell := ell
		specs := []eval.SketchSpec{
			{Label: "LM-AMM", Param: fmt.Sprintf("ell=%d", ell), New: func() core.WindowSketch {
				return core.NewLMAMM(window.Seq(win), dA, dB, ell, 8)
			}},
			{Label: "DI-AMM", Param: fmt.Sprintf("ell=%d", ell), New: func() core.WindowSketch {
				return core.NewDIAMM(core.DIConfig{
					N: win, R: maxSq * 1.01, L: 5, Ell: ell, RSlack: 2,
				}, dA, dB)
			}},
		}
		ms := eval.EvaluateAMM(ds, specs, eval.Config{
			Spec: window.Seq(win), QueryStride: sc.stride, Warmup: win, MaxQueries: sc.maxQ,
		}, dA)
		for i, m := range ms {
			bound := ammSlack[m.Label] * 4 / float64(ell)
			r := ammResult{
				Algo:        m.Label,
				Ell:         ell,
				AvgErr:      m.AvgErr,
				MaxErr:      m.MaxErr,
				Bound:       bound,
				WithinBound: m.MaxErr <= bound,
				PeakRows:    m.MaxRows,
				PeakBytes:   m.MaxRows * d * 8,
				NsPerUpdate: m.NsPerUpdate,
				Queries:     m.Queries,
			}
			// Snapshot size after the full stream (both frameworks
			// marshal; a refusal just reports 0).
			sk := specs[i].New()
			sk.UpdateBatch(ds.Rows, ds.Times)
			if mb, ok := sk.(encoding.BinaryMarshaler); ok {
				if blob, err := mb.MarshalBinary(); err == nil {
					r.SnapshotBytes = len(blob)
				}
			}
			results = append(results, r)
			fmt.Fprintf(out, "amm ell=%-4d %-7s err avg %.5f max %.5f  bound %.4f  peak %5d rows (%7d B)  snap %6d B  %6.0f ns/update\n",
				ell, r.Algo, r.AvgErr, r.MaxErr, r.Bound, r.PeakRows, r.PeakBytes, r.SnapshotBytes, r.NsPerUpdate)
		}
	}

	art := ammArtifact{Dataset: ds.Name, N: ds.N(), Window: win, DA: dA, DB: dB, Results: results}
	blob, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d results)\n", path, len(results))

	return checkAMMAcceptance(results)
}

// checkAMMAcceptance enforces the shipping bar: every grid point's
// worst observed correlation error within its slacked 4/ℓ bound.
func checkAMMAcceptance(results []ammResult) error {
	for _, r := range results {
		if !r.WithinBound {
			return fmt.Errorf("amm: %s ell=%d max correlation error %.4f exceeds bound %.4f",
				r.Algo, r.Ell, r.MaxErr, r.Bound)
		}
	}
	return nil
}
