package main

import (
	"math"

	"swsketch/internal/data"
)

// scaleCfg holds the knobs that trade fidelity against run time. The
// defaults reproduce every figure's shape in minutes on a laptop; the
// paper-scale values are reachable with -full (hours).
type scaleCfg struct {
	seqN    int // rows per sequence-based dataset
	timeN   int // rows per time-based dataset
	win     int // sequence window size (paper: 10,000)
	wikiD   int // WIKI vocabulary (paper: 7047)
	railD   int // RAIL columns (paper: 2586)
	synthD  int // SYNTHETIC columns (paper: 300)
	stride  int // query stride
	maxQ    int // max evaluated windows per run
	trials6 int // Figure 6 trials
	seed    int64
}

func defaultScale() scaleCfg {
	return scaleCfg{
		seqN:    24000,
		timeN:   24000,
		win:     2000,
		wikiD:   300,
		railD:   250,
		synthD:  100,
		stride:  1500,
		maxQ:    14,
		trials6: 10,
		seed:    1,
	}
}

func fullScale() scaleCfg {
	return scaleCfg{
		seqN:    200000,
		timeN:   200000,
		win:     10000,
		wikiD:   7047,
		railD:   2586,
		synthD:  300,
		stride:  5000,
		maxQ:    40,
		trials6: 20,
		seed:    1,
	}
}

// seqDataset builds one of the Table 2 sequence-window datasets.
func (sc scaleCfg) seqDataset(name string) *data.Dataset {
	switch name {
	case "SYNTHETIC":
		return data.Synthetic(data.SyntheticConfig{
			N: sc.seqN, D: sc.synthD, SignalDim: sc.synthD / 2, Seed: uint64(sc.seed),
		})
	case "BIBD":
		return data.BIBD(data.BIBDConfig{V: 22, K: 8, N: sc.seqN, Seed: uint64(sc.seed) + 1})
	case "PAMAP":
		return data.PAMAP(data.PAMAPConfig{
			N: sc.seqN, D: 35,
			SkewAt: sc.pamapSkewAt(), SkewLen: sc.win / 2,
			Seed: uint64(sc.seed) + 2,
		})
	default:
		panic("swbench: unknown sequence dataset " + name)
	}
}

// pamapSkewAt places the skewed segment past the warmup region, the
// analogue of the paper's rows 125,000–135,000.
func (sc scaleCfg) pamapSkewAt() int { return sc.seqN * 5 / 8 }

// timeDataset builds one of the Table 3 time-window datasets and
// returns it with the window span Δ chosen so a window holds ≈ win
// rows on average (the paper's Δ=578 days / Δ=5000 conventions).
func (sc scaleCfg) timeDataset(name string) (*data.Dataset, float64) {
	switch name {
	case "WIKI":
		ds := data.Wiki(data.WikiConfig{N: sc.timeN, D: sc.wikiD, Seed: uint64(sc.seed) + 3})
		span := ds.Times[ds.N()-1] - ds.Times[0]
		delta := span * float64(sc.win) / float64(sc.timeN)
		return ds, delta
	case "RAIL":
		ds := data.Rail(data.RailConfig{N: sc.timeN, D: sc.railD, Seed: uint64(sc.seed) + 4})
		// λ = 0.5 ⇒ mean gap 2 ⇒ Δ = 2·win for ≈ win rows per window.
		return ds, 2 * float64(sc.win)
	default:
		panic("swbench: unknown time dataset " + name)
	}
}

// diLevels picks the DI level count for a dataset and error target:
// the paper's L = ⌈log₂(R/ε)⌉, clamped by the practical bound the
// paper itself reports using ("the sketch size of our design is
// typically much smaller than our theoretical bounds' dependence on
// R"): enough levels that ≈64 level-1 blocks tile a window by mass
// (massSkew = maxSq/avgSq), but no more — heavy-tailed datasets
// (PAMAP) would otherwise spend a floor-size sketch per near-empty
// block. DI still loses on such data; this clamp only keeps its space
// in the same decade as the other algorithms so the figures overlap.
func diLevels(ratio, eps, massSkew float64) int {
	if ratio < 1 {
		ratio = 1
	}
	l := int(math.Ceil(math.Log2(ratio / eps)))
	if massSkew >= 1 {
		if lim := int(math.Ceil(math.Log2(64 * massSkew))); l > lim {
			l = lim
		}
	}
	if l < 3 {
		l = 3
	}
	if l > 22 {
		l = 22
	}
	return l
}
