package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/obs"
	"swsketch/internal/window"
)

// runObs measures the overhead of the obs.Instrumented decorator: each
// algorithm ingests the same synthetic stream bare and wrapped, over
// both the per-row Update path (worst case — one timing pair per row)
// and the UpdateBatch path (one timing pair per batch, the serve and
// swstream default). Reported overheads justify — or veto — leaving
// -metrics on in production.
func runObs(out *os.File, sc scaleCfg) {
	n := sc.seqN
	if n > 50000 {
		n = 50000
	}
	d := 32
	win := sc.win
	const batchSize = 256

	rng := rand.New(rand.NewSource(sc.seed))
	rows := make([][]float64, n)
	for i := range rows {
		r := make([]float64, d)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		rows[i] = r
	}
	times := make([]float64, n)
	for i := range times {
		times[i] = float64(i)
	}

	algos := []struct {
		name string
		mk   func() core.WindowSketch
	}{
		{"SWR", func() core.WindowSketch { return core.NewSWR(window.Seq(win), 16, d, sc.seed) }},
		{"SWOR", func() core.WindowSketch { return core.NewSWOR(window.Seq(win), 16, d, sc.seed) }},
		{"LM-FD", func() core.WindowSketch { return core.NewLMFD(window.Seq(win), d, 16, 8) }},
		{"DI-FD", func() core.WindowSketch {
			return core.NewDIFD(core.DIConfig{N: win, R: rowNormBound(rows), L: 6, Ell: 16, RSlack: 1.01}, d)
		}},
	}

	fmt.Fprintf(out, "obs overhead (n=%d rows, d=%d, window=%d, batch=%d, median of %d paired trials)\n",
		n, d, win, batchSize, obsTrials)
	fmt.Fprintf(out, "%-8s %-6s %12s %12s %10s\n", "algo", "path", "bare ns/row", "inst ns/row", "overhead")
	for _, a := range algos {
		for _, path := range []string{"row", "batch"} {
			// Bare and instrumented runs alternate back to back, so each
			// trial's ratio is a paired measurement sharing frequency and
			// cache state; the median ratio discards outlier trials that
			// a min-of-each estimator cannot.
			bares := make([]float64, obsTrials)
			ratios := make([]float64, obsTrials)
			for trial := range ratios {
				b := ingestNs(a.mk(), rows, times, path, batchSize)
				w := ingestNs(obs.NewInstrumented(a.mk(), obs.NewRegistry()), rows, times, path, batchSize)
				bares[trial] = b
				ratios[trial] = w / b
			}
			sort.Float64s(bares)
			sort.Float64s(ratios)
			bare := bares[obsTrials/2]
			ratio := ratios[obsTrials/2]
			fmt.Fprintf(out, "%-8s %-6s %12.1f %12.1f %9.2f%%\n",
				a.name, path, bare, bare*ratio, 100*(ratio-1))
		}
	}
}

// obsTrials is the per-configuration repeat count; odd, so the median
// is a single trial's paired ratio.
const obsTrials = 5

// rowNormBound returns the max squared row norm (the DI declared R).
func rowNormBound(rows [][]float64) float64 {
	var max float64
	for _, r := range rows {
		var s float64
		for _, v := range r {
			s += v * v
		}
		if s > max {
			max = s
		}
	}
	return max * 1.001
}

// ingestNs streams rows through sk and returns mean ns per row.
func ingestNs(sk core.WindowSketch, rows [][]float64, times []float64, path string, batchSize int) float64 {
	runtime.GC() // keep collector pauses out of the timed region
	start := time.Now()
	if path == "row" {
		for i, r := range rows {
			sk.Update(r, times[i])
		}
	} else {
		for i := 0; i < len(rows); i += batchSize {
			j := i + batchSize
			if j > len(rows) {
				j = len(rows)
			}
			sk.UpdateBatch(rows[i:j], times[i:j])
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(len(rows))
}
