package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/load"
	"swsketch/internal/obs"
	"swsketch/internal/obs/hh"
	"swsketch/internal/serve"
	"swsketch/internal/trace"
	"swsketch/internal/window"
)

// obsResult is one row of the BENCH_obs.json artifact: one algorithm's
// ingest cost bare, wrapped in the metrics decorator, and with a
// disabled tracer attached. The last column is the acceptance bar for
// the observability stack — a disabled tracer must cost < 5%.
type obsResult struct {
	Algo                 string  `json:"algo"`
	Path                 string  `json:"path"` // "row", "batch", or "stream"
	BareNsPerRow         float64 `json:"bare_ns_per_row"`
	InstrumentedNsPerRow float64 `json:"instrumented_ns_per_row"`
	InstrumentedPct      float64 `json:"instrumented_overhead_pct"`
	TracedOffNsPerRow    float64 `json:"traced_disabled_ns_per_row"`
	TracedOffPct         float64 `json:"traced_disabled_overhead_pct"`
}

// runObs measures the overhead of the observability stack: each
// algorithm ingests the same synthetic stream bare, wrapped in the
// obs.Instrumented decorator, and with a disabled tracer attached —
// over both the per-row Update path (worst case — one timing pair per
// row) and the UpdateBatch path (the serve and swstream default) —
// and then the /v2 binary stream end to end (where "instrumented"
// is the full metrics + hot-key sidecar stack).
// Reported overheads justify — or veto — leaving -metrics and -trace
// on in production; the results also land in path as JSON.
func runObs(out io.Writer, sc scaleCfg, path string) error {
	n := sc.seqN
	if n > 50000 {
		n = 50000
	}
	d := 32
	win := sc.win
	const batchSize = 256

	rng := rand.New(rand.NewSource(sc.seed))
	rows := make([][]float64, n)
	for i := range rows {
		r := make([]float64, d)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		rows[i] = r
	}
	times := make([]float64, n)
	for i := range times {
		times[i] = float64(i)
	}

	algos := []struct {
		name string
		mk   func() core.WindowSketch
	}{
		{"SWR", func() core.WindowSketch { return core.NewSWR(window.Seq(win), 16, d, sc.seed) }},
		{"SWOR", func() core.WindowSketch { return core.NewSWOR(window.Seq(win), 16, d, sc.seed) }},
		{"LM-FD", func() core.WindowSketch { return core.NewLMFD(window.Seq(win), d, 16, 8) }},
		{"DI-FD", func() core.WindowSketch {
			return core.NewDIFD(core.DIConfig{N: win, R: rowNormBound(rows), L: 6, Ell: 16, RSlack: 1.01}, d)
		}},
	}

	mkTraced := func(mk func() core.WindowSketch) core.WindowSketch {
		sk := mk()
		if t, ok := sk.(trace.Traceable); ok {
			t.SetTracer(trace.New(1024)) // attached but never enabled
		}
		return sk
	}

	var results []obsResult
	fmt.Fprintf(out, "obs overhead (n=%d rows, d=%d, window=%d, batch=%d, median of %d paired trials)\n",
		n, d, win, batchSize, obsTrials)
	fmt.Fprintf(out, "%-8s %-6s %12s %12s %10s %12s %10s\n",
		"algo", "path", "bare ns/row", "inst ns/row", "overhead", "traced-off", "overhead")
	for _, a := range algos {
		for _, ingestPath := range []string{"row", "batch"} {
			// Bare, instrumented, and traced-off runs alternate back to
			// back, so each trial's ratios are paired measurements sharing
			// frequency and cache state; the median ratio discards outlier
			// trials that a min-of-each estimator cannot.
			bares := make([]float64, obsTrials)
			instRatios := make([]float64, obsTrials)
			trRatios := make([]float64, obsTrials)
			for trial := range bares {
				b := ingestNs(a.mk(), rows, times, ingestPath, batchSize)
				w := ingestNs(obs.NewInstrumented(a.mk(), obs.NewRegistry()), rows, times, ingestPath, batchSize)
				tr := ingestNs(mkTraced(a.mk), rows, times, ingestPath, batchSize)
				bares[trial] = b
				instRatios[trial] = w / b
				trRatios[trial] = tr / b
			}
			sort.Float64s(bares)
			sort.Float64s(instRatios)
			sort.Float64s(trRatios)
			bare := bares[obsTrials/2]
			instRatio := instRatios[obsTrials/2]
			trRatio := trRatios[obsTrials/2]
			r := obsResult{
				Algo:                 a.name,
				Path:                 ingestPath,
				BareNsPerRow:         bare,
				InstrumentedNsPerRow: bare * instRatio,
				InstrumentedPct:      100 * (instRatio - 1),
				TracedOffNsPerRow:    bare * trRatio,
				TracedOffPct:         100 * (trRatio - 1),
			}
			results = append(results, r)
			fmt.Fprintf(out, "%-8s %-6s %12.1f %12.1f %9.2f%% %12.1f %9.2f%%\n",
				r.Algo, r.Path, r.BareNsPerRow, r.InstrumentedNsPerRow, r.InstrumentedPct,
				r.TracedOffNsPerRow, r.TracedOffPct)
		}
	}

	// The serving path end to end: the /v2 binary stream against a
	// bare server, one carrying the full metrics + hot-key sidecar
	// stack, and one with a disabled tracer attached. This is the
	// number the row/batch microbenchmarks above approximate from
	// below — it includes HTTP framing, the registry touch hook, and
	// the ingest funnel's sidecar calls.
	streamRow, err := obsStream(sc)
	if err != nil {
		return err
	}
	results = append(results, streamRow)
	fmt.Fprintf(out, "%-8s %-6s %12.1f %12.1f %9.2f%% %12.1f %9.2f%%\n",
		streamRow.Algo, streamRow.Path, streamRow.BareNsPerRow, streamRow.InstrumentedNsPerRow,
		streamRow.InstrumentedPct, streamRow.TracedOffNsPerRow, streamRow.TracedOffPct)

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d results)\n", path, len(results))
	return nil
}

// obsStream measures the /v2 binary-stream ingest path three ways:
// bare, instrumented (WithMetrics + the hot-key sidecar — the full
// production observability stack), and with a disabled tracer. Each
// trial drives the same Zipf fleet through all three servers back to
// back; the median paired ratio is reported, as in the
// microbenchmarks above.
func obsStream(sc scaleCfg) (obsResult, error) {
	const d = 16
	rows := sc.seqN
	if rows < 20000 {
		rows = 20000
	}
	if rows > 100000 {
		rows = 100000
	}

	type target struct {
		base string
		srv  *http.Server
	}
	mk := func(opts ...serve.Option) (target, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return target{}, err
		}
		sk := core.NewLMFD(window.Seq(1024), d, 8, 4)
		srv := &http.Server{Handler: serve.NewServer(sk, d, opts...).Handler()}
		go func() { _ = srv.Serve(ln) }()
		return target{"http://" + ln.Addr().String(), srv}, nil
	}
	bare, err := mk()
	if err != nil {
		return obsResult{}, err
	}
	defer bare.srv.Close()
	inst, err := mk(serve.WithMetrics(obs.NewRegistry()),
		serve.WithHotKeys(hh.New(hh.Config{Window: 10 * time.Minute})))
	if err != nil {
		return obsResult{}, err
	}
	defer inst.srv.Close()
	trSrv, err := mk(serve.WithTrace(trace.New(1024))) // attached, never enabled
	if err != nil {
		return obsResult{}, err
	}
	defer trSrv.srv.Close()

	rate := func(t target) (float64, error) {
		res, err := load.Run(load.Config{
			BaseURL: t.base, Mode: load.ModeFrames, Tenants: 256, D: d,
			Window: 1024, Rows: rows, Batch: 256, Workers: 2,
			ZipfS: 1.2, Seed: sc.seed,
		})
		if err != nil {
			return 0, err
		}
		if res.Errors > 0 {
			return 0, fmt.Errorf("stream path: %d failed blocks", res.Errors)
		}
		return 1e9 / res.RowsPerSec, nil // ns per row
	}

	bares := make([]float64, obsTrials)
	instRatios := make([]float64, obsTrials)
	trRatios := make([]float64, obsTrials)
	for trial := range bares {
		b, err := rate(bare)
		if err != nil {
			return obsResult{}, err
		}
		w, err := rate(inst)
		if err != nil {
			return obsResult{}, err
		}
		tr, err := rate(trSrv)
		if err != nil {
			return obsResult{}, err
		}
		bares[trial] = b
		instRatios[trial] = w / b
		trRatios[trial] = tr / b
	}
	sort.Float64s(bares)
	sort.Float64s(instRatios)
	sort.Float64s(trRatios)
	b := bares[obsTrials/2]
	iw := instRatios[obsTrials/2]
	tw := trRatios[obsTrials/2]
	return obsResult{
		Algo: "LM-FD", Path: "stream",
		BareNsPerRow:         b,
		InstrumentedNsPerRow: b * iw,
		InstrumentedPct:      100 * (iw - 1),
		TracedOffNsPerRow:    b * tw,
		TracedOffPct:         100 * (tw - 1),
	}, nil
}

// obsTrials is the per-configuration repeat count; odd, so the median
// is a single trial's paired ratio.
const obsTrials = 5

// rowNormBound returns the max squared row norm (the DI declared R).
func rowNormBound(rows [][]float64) float64 {
	var max float64
	for _, r := range rows {
		var s float64
		for _, v := range r {
			s += v * v
		}
		if s > max {
			max = s
		}
	}
	return max * 1.001
}

// ingestNs streams rows through sk and returns mean ns per row.
func ingestNs(sk core.WindowSketch, rows [][]float64, times []float64, path string, batchSize int) float64 {
	runtime.GC() // keep collector pauses out of the timed region
	start := time.Now()
	if path == "row" {
		for i, r := range rows {
			sk.Update(r, times[i])
		}
	} else {
		for i := 0; i < len(rows); i += batchSize {
			j := i + batchSize
			if j > len(rows) {
				j = len(rows)
			}
			sk.UpdateBatch(rows[i:j], times[i:j])
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(len(rows))
}
