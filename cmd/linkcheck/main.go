// Command linkcheck verifies the local links in markdown files. It is
// the CI gate behind `make linkcheck`: documentation that points at a
// file, directory, or heading that no longer exists fails the build
// instead of rotting silently.
//
// Usage:
//
//	linkcheck FILE.md [FILE.md...]
//
// For every inline link or image `[text](target)` it checks:
//
//   - relative file/directory targets exist on disk (resolved against
//     the markdown file's directory), and
//   - fragment targets (`#heading`, alone or after a file path) match a
//     heading in the referenced markdown file, using GitHub's anchor
//     slug rules (lowercase, spaces to dashes, punctuation stripped,
//     duplicate slugs suffixed -1, -2, ...).
//
// External targets (http://, https://, mailto:) are skipped: CI must
// not depend on network reachability. Fenced code blocks are ignored so
// sample output containing brackets is not parsed as links.
//
// Exit status is 1 when any link is broken, with one
// "path:line: message" diagnostic per finding; 0 otherwise.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline links and images: [text](target). Nested
// brackets in the text are not supported; the repo's docs do not use
// them.
var linkRe = regexp.MustCompile(`!?\[[^\]\n]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings (#, ##, ...).
var headingRe = regexp.MustCompile(`^#{1,6}\s+(.*)$`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck FILE.md [FILE.md...]")
		os.Exit(2)
	}
	var broken int
	for _, path := range os.Args[1:] {
		findings, err := checkFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		broken += len(findings)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// checkFile validates every local link in one markdown file.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	var findings []string
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if msg := checkTarget(dir, path, target); msg != "" {
				findings = append(findings, fmt.Sprintf("%s:%d: %s", path, i+1, msg))
			}
		}
	}
	return findings, nil
}

// checkTarget validates one link target; it returns a diagnostic
// message, or "" when the target resolves.
func checkTarget(dir, src, target string) string {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return "" // external; not checked
	}
	file, frag, _ := strings.Cut(target, "#")
	resolved := src
	if file != "" {
		resolved = filepath.Join(dir, file)
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", target, resolved)
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.HasSuffix(resolved, ".md") {
		return "" // fragments into non-markdown files are not checked
	}
	anchors, err := headingAnchors(resolved)
	if err != nil {
		return fmt.Sprintf("broken link %q: %v", target, err)
	}
	if !anchors[strings.ToLower(frag)] {
		return fmt.Sprintf("broken link %q: no heading with anchor #%s in %s", target, frag, resolved)
	}
	return ""
}

// headingAnchors returns the set of GitHub-style anchor slugs for the
// headings of one markdown file.
func headingAnchors(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	anchors := map[string]bool{}
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[1])
		// GitHub de-duplicates repeated headings as slug, slug-1, ...
		for n := 0; ; n++ {
			candidate := slug
			if n > 0 {
				candidate = fmt.Sprintf("%s-%d", slug, n)
			}
			if !anchors[candidate] {
				anchors[candidate] = true
				break
			}
		}
	}
	return anchors, nil
}

// slugify converts a heading to its GitHub anchor: lowercase, markdown
// emphasis/code markers and punctuation stripped, spaces to dashes.
func slugify(heading string) string {
	// Drop inline code/emphasis markers and trailing anchors.
	heading = strings.NewReplacer("`", "", "*", "", "_", "_").Replace(heading)
	heading = strings.TrimSpace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		default:
			// punctuation is removed
		}
	}
	return b.String()
}
