// Command swload drives synthetic multi-tenant ingest traffic against
// a swsketch server and reports throughput and tail latency.
//
//	swload -tenants 2000 -rows 200000 -zipf 1.2 -mode all
//
// Without -url it self-hosts an in-process server (the common CI
// shape); point -url at a running swserve to load a real deployment.
// Tenant selection is Zipf-skewed (-zipf > 1) so a few tenants run
// hot while a long tail stays cold — the contention profile
// multi-tenant ingest actually sees.
//
// Modes (-mode):
//
//	v1      one JSON POST per batch — the request-per-batch baseline
//	ndjson  /v2 streaming ingest, NDJSON framing
//	frames  /v2 streaming ingest, binary framing
//	all     the three in sequence, with speedups vs v1
//
// Results go to stdout as an aligned table and to -out (default
// BENCH_load.json) as a JSON array of per-mode measurements.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/load"
	"swsketch/internal/obs/hh"
	"swsketch/internal/serve"
	"swsketch/internal/window"
)

func main() {
	var (
		url     = flag.String("url", "", "target server root (empty = self-host in-process)")
		mode    = flag.String("mode", "all", "wire mode: v1 | ndjson | frames | all")
		tenants = flag.Int("tenants", 1000, "fleet size")
		rows    = flag.Int("rows", 100000, "total row budget")
		batch   = flag.Int("batch", 64, "rows per block")
		workers = flag.Int("workers", 8, "concurrent connections")
		zipf    = flag.Float64("zipf", 1.2, "tenant-selection skew (>1; ≤1 = uniform)")
		d       = flag.Int("d", 16, "row dimension")
		win     = flag.Int("window", 1024, "tenant window size (rows)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "BENCH_load.json", "JSON results path (empty disables)")
		hotkeys = flag.Bool("hotkeys", false, "enable the hot-key sidecar (self-host only), track exact per-tenant rows, and compare /debug/hotkeys against them after the run")
	)
	flag.Parse()

	base := *url
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("swload: listen: %v", err)
		}
		sk := core.NewLMFD(window.Seq(*win), *d, 16, 8)
		var sopts []serve.Option
		if *hotkeys {
			// A window far longer than any load run keeps the sidecar's
			// counts effectively exact for the post-run comparison.
			sopts = append(sopts, serve.WithHotKeys(hh.New(hh.Config{Window: 10 * time.Minute})))
		}
		srv := &http.Server{Handler: serve.NewServer(sk, *d, sopts...).Handler()}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("swload: self-hosted server on %s\n", base)
	} else if *hotkeys {
		fmt.Println("swload: -hotkeys with -url: comparing against the remote /debug/hotkeys (it must run with -hotkeys)")
	}

	modes := []string{*mode}
	if *mode == "all" {
		modes = []string{load.ModeV1, load.ModeNDJSON, load.ModeFrames}
	}
	cfg := load.Config{
		BaseURL: base, Tenants: *tenants, D: *d, Window: *win,
		Rows: *rows, Batch: *batch, Workers: *workers, ZipfS: *zipf, Seed: *seed,
		TrackTenants: *hotkeys,
	}
	fmt.Printf("swload: %d tenants, %d rows, batch %d, %d workers, zipf %.2f\n",
		*tenants, *rows, *batch, *workers, *zipf)
	fmt.Printf("%8s %12s %10s %10s %8s\n", "mode", "rows/sec", "p50 ms", "p99 ms", "errors")

	var results []load.Result
	var v1Rate float64
	exact := map[string]int{}
	for _, m := range modes {
		cfg.Mode = m
		res, err := load.Run(cfg)
		if err != nil {
			log.Fatalf("swload: %s: %v", m, err)
		}
		if m == load.ModeV1 {
			v1Rate = res.RowsPerSec
		} else if v1Rate > 0 {
			res.SpeedupVsV1 = res.RowsPerSec / v1Rate
		}
		for id, n := range res.TenantRows {
			exact[id] += n
		}
		res.TenantRows = nil // per-mode maps would bloat the JSON; keep the merged view
		results = append(results, res)
		fmt.Printf("%8s %12.0f %10.2f %10.2f %8d", res.Mode, res.RowsPerSec, res.P50Ms, res.P99Ms, res.Errors)
		if res.SpeedupVsV1 > 0 {
			fmt.Printf("  %.1fx vs v1", res.SpeedupVsV1)
		}
		fmt.Println()
	}

	if *hotkeys {
		if err := compareHotkeys(base, exact); err != nil {
			log.Fatalf("swload: hotkeys: %v", err)
		}
	}

	if *out != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			log.Fatalf("swload: %v", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatalf("swload: %v", err)
		}
		fmt.Printf("wrote %s (%d results)\n", *out, len(results))
	}
}

// compareHotkeys fetches the server's /debug/hotkeys snapshot and
// prints its top entries next to the driver's exact accepted-row
// counts — the quick-look version of the swbench hh experiment.
func compareHotkeys(base string, exact map[string]int) error {
	resp, err := http.Get(base + "/debug/hotkeys")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /debug/hotkeys: status %d (is the server running with -hotkeys?)", resp.StatusCode)
	}
	snap, err := hh.DecodeSnapshot(body)
	if err != nil {
		return fmt.Errorf("decode snapshot: %w", err)
	}
	fmt.Printf("hotkeys: top-%d of ~%.0f tenants, zipf s=%.2f, top-K share %.1f%%\n",
		len(snap.TopK), snap.DistinctTenants, snap.ZipfS, 100*snap.TopKShare)
	fmt.Printf("%12s %12s %12s %10s\n", "tenant", "estimated", "exact", "overcount")
	for i, e := range snap.TopK {
		if i >= 8 {
			break
		}
		ex := exact[e.Tenant]
		fmt.Printf("%12s %12d %12d %10d\n", e.Tenant, e.Rows, ex, int64(e.Rows)-int64(ex))
	}
	return nil
}
