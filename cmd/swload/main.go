// Command swload drives synthetic multi-tenant ingest traffic against
// a swsketch server and reports throughput and tail latency.
//
//	swload -tenants 2000 -rows 200000 -zipf 1.2 -mode all
//
// Without -url it self-hosts an in-process server (the common CI
// shape); point -url at a running swserve to load a real deployment.
// Tenant selection is Zipf-skewed (-zipf > 1) so a few tenants run
// hot while a long tail stays cold — the contention profile
// multi-tenant ingest actually sees.
//
// Modes (-mode):
//
//	v1      one JSON POST per batch — the request-per-batch baseline
//	ndjson  /v2 streaming ingest, NDJSON framing
//	frames  /v2 streaming ingest, binary framing
//	all     the three in sequence, with speedups vs v1
//
// Results go to stdout as an aligned table and to -out (default
// BENCH_load.json) as a JSON array of per-mode measurements.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"swsketch/internal/core"
	"swsketch/internal/load"
	"swsketch/internal/serve"
	"swsketch/internal/window"
)

func main() {
	var (
		url     = flag.String("url", "", "target server root (empty = self-host in-process)")
		mode    = flag.String("mode", "all", "wire mode: v1 | ndjson | frames | all")
		tenants = flag.Int("tenants", 1000, "fleet size")
		rows    = flag.Int("rows", 100000, "total row budget")
		batch   = flag.Int("batch", 64, "rows per block")
		workers = flag.Int("workers", 8, "concurrent connections")
		zipf    = flag.Float64("zipf", 1.2, "tenant-selection skew (>1; ≤1 = uniform)")
		d       = flag.Int("d", 16, "row dimension")
		win     = flag.Int("window", 1024, "tenant window size (rows)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "BENCH_load.json", "JSON results path (empty disables)")
	)
	flag.Parse()

	base := *url
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("swload: listen: %v", err)
		}
		sk := core.NewLMFD(window.Seq(*win), *d, 16, 8)
		srv := &http.Server{Handler: serve.NewServer(sk, *d).Handler()}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("swload: self-hosted server on %s\n", base)
	}

	modes := []string{*mode}
	if *mode == "all" {
		modes = []string{load.ModeV1, load.ModeNDJSON, load.ModeFrames}
	}
	cfg := load.Config{
		BaseURL: base, Tenants: *tenants, D: *d, Window: *win,
		Rows: *rows, Batch: *batch, Workers: *workers, ZipfS: *zipf, Seed: *seed,
	}
	fmt.Printf("swload: %d tenants, %d rows, batch %d, %d workers, zipf %.2f\n",
		*tenants, *rows, *batch, *workers, *zipf)
	fmt.Printf("%8s %12s %10s %10s %8s\n", "mode", "rows/sec", "p50 ms", "p99 ms", "errors")

	var results []load.Result
	var v1Rate float64
	for _, m := range modes {
		cfg.Mode = m
		res, err := load.Run(cfg)
		if err != nil {
			log.Fatalf("swload: %s: %v", m, err)
		}
		if m == load.ModeV1 {
			v1Rate = res.RowsPerSec
		} else if v1Rate > 0 {
			res.SpeedupVsV1 = res.RowsPerSec / v1Rate
		}
		results = append(results, res)
		fmt.Printf("%8s %12.0f %10.2f %10.2f %8d", res.Mode, res.RowsPerSec, res.P50Ms, res.P99Ms, res.Errors)
		if res.SpeedupVsV1 > 0 {
			fmt.Printf("  %.1fx vs v1", res.SpeedupVsV1)
		}
		fmt.Println()
	}

	if *out != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			log.Fatalf("swload: %v", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatalf("swload: %v", err)
		}
		fmt.Printf("wrote %s (%d results)\n", *out, len(results))
	}
}
