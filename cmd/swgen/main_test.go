package main

import "testing"

func TestBuildDataset(t *testing.T) {
	for name, wantD := range map[string]int{
		"synthetic": 100,
		"bibd":      231,
		"pamap":     35,
		"wiki":      300,
		"rail":      250,
	} {
		ds, err := buildDataset(name, 50, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.N() != 50 || ds.D() != wantD {
			t.Fatalf("%s: %d×%d, want 50×%d", name, ds.N(), ds.D(), wantD)
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// Dimension override (bibd's is fixed by V).
	ds, err := buildDataset("SYNTHETIC", 10, 12, 1)
	if err != nil || ds.D() != 12 {
		t.Fatalf("override: %v d=%d", err, ds.D())
	}
	if _, err := buildDataset("nope", 10, 0, 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}
