// Command swgen emits one of the paper's evaluation datasets as CSV
// (timestamp,v1,...,vd), suitable for piping into swstream or for use
// with external tools.
//
// Usage:
//
//	swgen -dataset synthetic -n 10000 -d 100 > synthetic.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"swsketch/internal/data"
)

func main() {
	var (
		name = flag.String("dataset", "synthetic", "synthetic | bibd | pamap | wiki | rail")
		n    = flag.Int("n", 10000, "number of rows")
		d    = flag.Int("d", 0, "dimension (dataset-specific default when 0)")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	ds, err := buildDataset(*name, *n, *d, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swgen: %v\n", err)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := ds.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "swgen: %v\n", err)
		os.Exit(1)
	}
}

// buildDataset maps a dataset name and size knobs to a generator call;
// d ≤ 0 selects the dataset's default dimension.
func buildDataset(name string, n, d int, seed int64) (*data.Dataset, error) {
	def := func(fallback int) int {
		if d <= 0 {
			return fallback
		}
		return d
	}
	switch strings.ToLower(name) {
	case "synthetic":
		dd := def(100)
		return data.Synthetic(data.SyntheticConfig{N: n, D: dd, SignalDim: dd / 2, Seed: uint64(seed)}), nil
	case "bibd":
		return data.BIBD(data.BIBDConfig{V: 22, K: 8, N: n, Seed: uint64(seed)}), nil
	case "pamap":
		return data.PAMAP(data.PAMAPConfig{N: n, D: def(35), SkewAt: n * 5 / 8, Seed: uint64(seed)}), nil
	case "wiki":
		return data.Wiki(data.WikiConfig{N: n, D: def(300), Seed: uint64(seed)}), nil
	case "rail":
		return data.Rail(data.RailConfig{N: n, D: def(250), Seed: uint64(seed)}), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}
