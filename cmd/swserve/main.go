// Command swserve exposes a sliding-window matrix sketch over HTTP.
//
//	swserve -algo lm-fd -d 64 -window 10000 -addr :8080
//
// Endpoints (JSON):
//
//	POST /v1/ingest         {"updates":[{"row":[...],"t":1.5},...]}
//	GET  /v1/approximation  [?t=...]      window approximation B
//	GET  /v1/pca            [?t=...&k=3]  top-k window PCA
//	GET  /v1/stats                        sketch metadata
//	GET  /healthz
//
// The process shuts down cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/serve"
	"swsketch/internal/window"
)

func main() {
	var (
		algo    = flag.String("algo", "lm-fd", "sketch: swr | swor | swor-all | lm-fd | lm-hash")
		d       = flag.Int("d", 0, "row dimension (required)")
		winSize = flag.Float64("window", 10000, "window size (rows, or span with -time)")
		useTime = flag.Bool("time", false, "time-based window")
		ell     = flag.Int("ell", 32, "sketch size parameter ℓ")
		b       = flag.Int("b", 8, "LM blocks per level")
		seed    = flag.Int64("seed", 1, "random seed")
		addr    = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	if *d < 1 {
		fmt.Fprintln(os.Stderr, "swserve: -d (row dimension) is required")
		os.Exit(2)
	}

	var spec window.Spec
	if *useTime {
		spec = window.TimeSpan(*winSize)
	} else {
		spec = window.Seq(int(*winSize))
	}

	var sk core.WindowSketch
	switch strings.ToLower(*algo) {
	case "swr":
		sk = core.NewSWR(spec, *ell, *d, *seed)
	case "swor":
		sk = core.NewSWOR(spec, *ell, *d, *seed)
	case "swor-all":
		sk = core.NewSWORAll(spec, *ell, *d, *seed)
	case "lm-fd":
		sk = core.NewLMFD(spec, *d, *ell, *b)
	case "lm-hash":
		sk = core.NewLMHash(spec, *d, *ell, *b, uint64(*seed))
	default:
		fmt.Fprintf(os.Stderr, "swserve: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewServer(sk, *d).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("swserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		close(done)
	}()

	log.Printf("swserve: %s over %v window, d=%d, listening on %s", sk.Name(), spec, *d, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("swserve: %v", err)
	}
	<-done
}
