// Command swserve exposes sliding-window matrix sketches over HTTP.
//
//	swserve -algo lm-fd -d 64 -window 10000 -addr :8080 -metrics
//
// The -algo/-d/... flags describe the default sketch, served on the
// single-sketch routes; further tenants — independent named sketches
// with their own configs — are created and queried at runtime under
// /v1/tenants/{id}/... (see docs/API.md for the full reference).
//
// Endpoints (JSON):
//
//	POST /v1/ingest         {"updates":[{"row":[...],"t":1.5},...]}
//	POST /v1/ingest/bulk    multi-tenant ingest in one request
//	GET  /v1/approximation  [?t=...]      window approximation B
//	GET  /v1/pca            [?t=...&k=3]  top-k window PCA
//	GET  /v1/tenants/{id}/amm             windowed AᵀB estimate (paired
//	                                      frameworks lm-amm/di-amm only)
//	GET  /v1/stats                        sketch metadata + internals
//	GET  /v1/health         accuracy health: ok/degraded (with -audit)
//	GET  /v1/snapshot       binary snapshot (POST restores one)
//	*    /v1/tenants...     tenant CRUD + per-tenant ingest/query routes
//	GET  /healthz
//	GET  /metrics           Prometheus exposition (with -metrics)
//	GET  /debug/trace       structural event trace, JSONL (with -trace)
//	GET  /debug/hotkeys     sliding top-K hot tenants (with -hotkeys)
//	     /debug/pprof/...   runtime profiles (with -pprof)
//
// Multi-tenant operation is tuned by three flags: -tenants-max caps
// the resident fleet (LRU eviction on create), -evict-ttl evicts
// tenants idle longer than the given duration (a background sweeper
// runs at a fraction of the TTL), and -spill-dir preserves evicted
// tenants on disk — they restore transparently on their next touch,
// and a restarted process resumes the spilled fleet lazily.
//
// Errors use the envelope {"error":{"code":"...","message":"..."}};
// see the serve package documentation for the code list.
//
// The process shuts down cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"swsketch/internal/core"
	"swsketch/internal/obs"
	"swsketch/internal/obs/audit"
	"swsketch/internal/obs/hh"
	"swsketch/internal/registry"
	"swsketch/internal/serve"
	"swsketch/internal/stream"
	"swsketch/internal/trace"
	"swsketch/internal/wal"
	"swsketch/internal/window"
)

func main() {
	var (
		algo    = flag.String("algo", "lm-fd", "sketch: swr | swor | swor-all | lm-fd | lm-hash | di-fd | ds-fd | lm-amm | di-amm")
		d       = flag.Int("d", 0, "row dimension (required)")
		winSize = flag.Float64("window", 10000, "window size (rows, or span with -time)")
		useTime = flag.Bool("time", false, "time-based window")
		ell     = flag.Int("ell", 32, "sketch size parameter ℓ")
		b       = flag.Int("b", 8, "LM blocks per level")
		levels  = flag.Int("L", 6, "DI levels (di-fd)")
		rBound  = flag.Float64("R", 0, "max squared row norm bound (required for di-fd/di-amm; optional for ds-fd, 0 = adaptive)")
		dBSplit = flag.Int("d-b", 0, "B-side suffix width of each stacked row [a|b] (required for lm-amm/di-amm)")
		fdBuf   = flag.Int("fd-buffer", 0, "FastFD working-buffer factor b for the FD frameworks (0/1 = classic, 2 = recommended)")
		fdAlpha = flag.Float64("fd-alpha", 0, "FastFD shrink aggressiveness α in (0,1] for the FD frameworks (0 = classic 1)")
		seed    = flag.Int64("seed", 1, "random seed")
		addr    = flag.String("addr", ":8080", "listen address")
		metrics = flag.Bool("metrics", false, "serve Prometheus metrics on /metrics")
		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		maxBody = flag.Int64("maxbody", 0, "max request body bytes (0 = unlimited)")
		traceOn = flag.Bool("trace", false, "trace structural events; serve them on /debug/trace")
		trCap   = flag.Int("trace-cap", 8192, "trace ring capacity (events)")
		trEvery = flag.Int("trace-sample", 1, "record one in every k trace events (counts stay exact)")
		auditOn = flag.Bool("audit", false, "audit accuracy with an exact shadow window; serve /v1/health verdicts")
		aStride = flag.Int("audit-stride", 0, "audit evaluation cadence in rows (0 = default)")
		aCap    = flag.Int("audit-cap", 0, "audit shadow row cap; auditing disarms beyond it (0 = default, <0 = uncapped)")
		aThresh = flag.Float64("audit-threshold", 0, "cova-err level that flips /v1/health to degraded (0 = default)")
		logReq  = flag.Bool("log", false, "log each request (structured, stderr) with its request ID")
		tenMax  = flag.Int("tenants-max", 0, "cap on resident tenants; LRU-evicts on create (0 = uncapped)")
		evictT  = flag.Duration("evict-ttl", 0, "evict tenants idle longer than this (0 = never)")
		spill   = flag.String("spill-dir", "", "spill evicted tenants to this directory and restore on touch")
		walDir  = flag.String("wal-dir", "", "journal ingest into a per-shard write-ahead log under this directory and replay it on startup")
		walSync = flag.Duration("wal-sync", 5*time.Millisecond, "WAL group-commit fsync interval (0 = fsync every append)")
		hotOn   = flag.Bool("hotkeys", false, "track hot tenants with a sliding count-min sidecar; serve /debug/hotkeys")
		hotWin  = flag.Duration("hotkeys-window", time.Minute, "hot-key sliding window")
		hotK    = flag.Int("hotkeys-k", 16, "hot-key top-K size")
		hotW    = flag.Int("hotkeys-width", 1024, "hot-key count-min width (counters per row; rounded up to a power of two)")
		hotD    = flag.Int("hotkeys-depth", 4, "hot-key count-min depth (hash rows)")
	)
	flag.Parse()
	if *d < 1 {
		fmt.Fprintln(os.Stderr, "swserve: -d (row dimension) is required")
		os.Exit(2)
	}

	var spec window.Spec
	if *useTime {
		spec = window.TimeSpan(*winSize)
	} else {
		spec = window.Seq(int(*winSize))
	}

	fdo := stream.FDOpts{Buffer: *fdBuf, Alpha: *fdAlpha}
	if *fdBuf < 0 || *fdAlpha < 0 || *fdAlpha > 1 {
		fmt.Fprintln(os.Stderr, "swserve: -fd-buffer must be ≥ 0 and -fd-alpha in (0,1] (0 for the default)")
		os.Exit(2)
	}
	isAMM := false
	switch strings.ToLower(*algo) {
	case "lm-fd", "di-fd", "ds-fd":
	case "lm-amm", "di-amm":
		isAMM = true
	default:
		if *fdBuf != 0 || *fdAlpha != 0 {
			fmt.Fprintf(os.Stderr, "swserve: -fd-buffer/-fd-alpha apply to the FD and AMM frameworks only, not %q\n", *algo)
			os.Exit(2)
		}
	}
	if isAMM && (*dBSplit < 1 || *dBSplit >= *d) {
		fmt.Fprintf(os.Stderr, "swserve: %s requires -d-b in (0,d): the B-side suffix width of the stacked dimension d=%d\n", *algo, *d)
		os.Exit(2)
	}
	if !isAMM && *dBSplit != 0 {
		fmt.Fprintf(os.Stderr, "swserve: -d-b applies to the paired (amm) frameworks only, not %q\n", *algo)
		os.Exit(2)
	}

	var sk core.WindowSketch
	switch strings.ToLower(*algo) {
	case "swr":
		sk = core.NewSWR(spec, *ell, *d, *seed)
	case "swor":
		sk = core.NewSWOR(spec, *ell, *d, *seed)
	case "swor-all":
		sk = core.NewSWORAll(spec, *ell, *d, *seed)
	case "lm-fd":
		sk = core.NewLMFDOpts(spec, *d, *ell, *b, fdo)
	case "lm-hash":
		sk = core.NewLMHash(spec, *d, *ell, *b, uint64(*seed))
	case "di-fd":
		if *useTime {
			fmt.Fprintln(os.Stderr, "swserve: di-fd supports sequence windows only")
			os.Exit(2)
		}
		if *rBound <= 0 {
			fmt.Fprintln(os.Stderr, "swserve: di-fd requires -R (the max squared row norm)")
			os.Exit(2)
		}
		sk = core.NewDIFDOpts(core.DIConfig{
			N: int(*winSize), R: *rBound, L: *levels, Ell: *ell, RSlack: 1.01,
		}, *d, fdo)
	case "ds-fd":
		if *useTime {
			fmt.Fprintln(os.Stderr, "swserve: ds-fd supports sequence windows only")
			os.Exit(2)
		}
		sk = core.NewDSFD(core.DSFDConfig{
			N: int(*winSize), Ell: *ell, R: *rBound, RSlack: 1.01, FD: fdo,
		}, *d)
	case "lm-amm":
		sk = core.NewLMAMMOpts(spec, *d-*dBSplit, *dBSplit, *ell, *b, fdo)
	case "di-amm":
		if *useTime {
			fmt.Fprintln(os.Stderr, "swserve: di-amm supports sequence windows only")
			os.Exit(2)
		}
		if *rBound <= 0 {
			fmt.Fprintln(os.Stderr, "swserve: di-amm requires -R (the max squared row norm)")
			os.Exit(2)
		}
		sk = core.NewDIAMMOpts(core.DIConfig{
			N: int(*winSize), R: *rBound, L: *levels, Ell: *ell, RSlack: 1.01,
		}, *d-*dBSplit, *dBSplit, fdo)
	default:
		fmt.Fprintf(os.Stderr, "swserve: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}

	var opts []serve.Option
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		opts = append(opts, serve.WithMetrics(reg))
	}
	if *pprofOn {
		opts = append(opts, serve.WithPprof())
	}
	if *maxBody > 0 {
		opts = append(opts, serve.WithMaxBody(*maxBody))
	}
	var tr *trace.Tracer
	if *traceOn {
		tr = trace.New(*trCap)
		tr.SetSampleEvery(*trEvery)
		tr.Enable()
		opts = append(opts, serve.WithTrace(tr))
	}
	if *auditOn {
		opts = append(opts, serve.WithAudit(audit.New(audit.Config{
			Spec: spec, D: *d, Stride: *aStride,
			MaxShadowRows: *aCap, ErrThreshold: *aThresh,
		}, reg)))
	}
	if *logReq {
		opts = append(opts, serve.WithLogger(slog.New(slog.NewTextHandler(os.Stderr, nil))))
	}
	if *hotOn {
		opts = append(opts, serve.WithHotKeys(hh.New(hh.Config{
			Window: *hotWin, K: *hotK, Width: *hotW, Depth: *hotD,
		})))
	}

	// Multi-tenant tuning: hand serve a registry only when a tenant
	// flag is set (serve builds a plain one otherwise).
	if *tenMax > 0 || *evictT > 0 || *spill != "" {
		var ropts []registry.Option
		if *tenMax > 0 {
			ropts = append(ropts, registry.WithMaxTenants(*tenMax))
		}
		if *evictT > 0 {
			ropts = append(ropts, registry.WithEvictTTL(*evictT))
		}
		if *spill != "" {
			ropts = append(ropts, registry.WithSpillDir(*spill))
		}
		if reg != nil {
			ropts = append(ropts, registry.WithObs(reg))
		}
		if tr != nil {
			ropts = append(ropts, registry.WithTrace(tr))
		}
		treg, err := registry.New(ropts...)
		if err != nil {
			log.Fatalf("swserve: %v", err)
		}
		opts = append(opts, serve.WithRegistry(treg))
	}

	var wlog *wal.Log
	if *walDir != "" {
		var werr error
		wlog, werr = wal.Open(*walDir, wal.WithSyncInterval(*walSync),
			walObs(reg), walTrace(tr))
		if werr != nil {
			log.Fatalf("swserve: open wal: %v", werr)
		}
		opts = append(opts, serve.WithWAL(wlog))
	}

	server := serve.NewServer(sk, *d, opts...)
	if wlog != nil {
		st, err := server.RecoverWAL()
		if err != nil {
			log.Fatalf("swserve: wal replay: %v", err)
		}
		note := ""
		if st.Torn {
			note = " (torn tail truncated)"
		}
		if st.Damaged {
			note = " (CORRUPTION: replay stopped early, serving degraded)"
		}
		log.Printf("swserve: wal replayed %d records from %d segments: %d applied, %d skipped, %d rows%s",
			st.Records, st.Segments, st.Applied, st.Skipped, st.Rows, note)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// The registry never sweeps by itself; with a TTL configured, run
	// the sweeper at a fraction of it so idle tenants leave memory
	// within ~1.25× the TTL.
	sweepDone := make(chan struct{})
	if *evictT > 0 {
		interval := *evictT / 4
		if interval < time.Second {
			interval = time.Second
		}
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-sweepDone:
					return
				case <-tick.C:
					server.Registry().Sweep()
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("swserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		close(sweepDone)
		close(done)
	}()

	extras := ""
	if *metrics {
		extras += " metrics"
	}
	if *pprofOn {
		extras += " pprof"
	}
	if *traceOn {
		extras += " trace"
	}
	if *auditOn {
		extras += " audit"
	}
	if *tenMax > 0 {
		extras += fmt.Sprintf(" tenants-max=%d", *tenMax)
	}
	if *evictT > 0 {
		extras += fmt.Sprintf(" evict-ttl=%v", *evictT)
	}
	if *spill != "" {
		extras += " spill-dir=" + *spill
	}
	if *walDir != "" {
		extras += " wal-dir=" + *walDir
	}
	if *hotOn {
		extras += fmt.Sprintf(" hotkeys(window=%v k=%d)", *hotWin, *hotK)
	}
	log.Printf("swserve: %s over %v window, d=%d, listening on %s%s", sk.Name(), spec, *d, *addr, extras)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("swserve: %v", err)
	}
	<-done
	if wlog != nil {
		// Final group commit so a clean shutdown leaves nothing torn.
		if err := wlog.Close(); err != nil {
			log.Printf("swserve: wal close: %v", err)
		}
	}
}

// walObs adapts a possibly-nil metrics registry to a WAL option.
func walObs(reg *obs.Registry) wal.Option {
	if reg == nil {
		return func(*wal.Log) {}
	}
	return wal.WithObs(reg)
}

// walTrace adapts a possibly-nil tracer to a WAL option.
func walTrace(tr *trace.Tracer) wal.Option {
	if tr == nil {
		return func(*wal.Log) {}
	}
	return wal.WithTrace(tr)
}
