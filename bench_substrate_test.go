// Substrate and ablation benchmarks beyond the paper's figures: the
// eigensolver pair that powers FrequentDirections, the streaming
// sketches' update paths (dense vs sparse), the samplers' per-row
// costs, and the exponential histogram.
package swsketch_test

import (
	"fmt"
	"math/rand"
	"testing"

	"swsketch/internal/core"
	"swsketch/internal/eh"
	"swsketch/internal/mat"
	"swsketch/internal/stream"
	"swsketch/internal/window"
)

func randSym(rng *rand.Rand, n int) *mat.Dense {
	m := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func denseRows(rng *rand.Rand, n, d int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	return rows
}

// BenchmarkAblationEigensolver compares the production QL path with
// the Jacobi reference across the Gram sizes the sketches produce.
func BenchmarkAblationEigensolver(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{16, 48, 128} {
		a := randSym(rng, n)
		b.Run(fmt.Sprintf("QL/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mat.EigenSymQL(a)
			}
		})
		b.Run(fmt.Sprintf("Jacobi/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mat.EigenSymJacobi(a)
			}
		})
	}
}

// BenchmarkAblationStreamingSketch measures the raw streaming update
// paths at matched space (FD and iSVD at 2ℓ buffer rows, Hash, RP).
func BenchmarkAblationStreamingSketch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d := 100
	rows := denseRows(rng, 2048, d)
	b.Run("FD/ell=64", func(b *testing.B) {
		fd := stream.NewFD(64, d)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fd.Update(rows[i%len(rows)])
		}
	})
	b.Run("ISVD/ell=32", func(b *testing.B) {
		is := stream.NewISVD(32, d)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			is.Update(rows[i%len(rows)])
		}
	})
	b.Run("Hash/ell=64", func(b *testing.B) {
		h := stream.NewHashFamily(1).NewSketch(64, d)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Update(rows[i%len(rows)])
		}
	})
	b.Run("RP/ell=64", func(b *testing.B) {
		p := stream.NewRP(64, d, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Update(rows[i%len(rows)])
		}
	})
}

// BenchmarkAblationSparseIngest quantifies the sparse-update win on a
// 1%-dense stream at WIKI-like dimension.
func BenchmarkAblationSparseIngest(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	d := 2000
	n := 1024
	dense := make([][]float64, n)
	sparse := make([]mat.SparseRow, n)
	for i := range dense {
		row := make([]float64, d)
		for k := 0; k < 20; k++ {
			row[rng.Intn(d)] = rng.NormFloat64()
		}
		dense[i] = row
		sparse[i] = mat.SparseFromDense(row)
	}
	b.Run("Hash/dense", func(b *testing.B) {
		h := stream.NewHashFamily(1).NewSketch(128, d)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Update(dense[i%n])
		}
	})
	b.Run("Hash/sparse", func(b *testing.B) {
		h := stream.NewHashFamily(1).NewSketch(128, d)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.UpdateSparse(sparse[i%n])
		}
	})
	b.Run("RP/dense", func(b *testing.B) {
		p := stream.NewRP(64, d, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Update(dense[i%n])
		}
	})
	b.Run("RP/sparse", func(b *testing.B) {
		p := stream.NewRP(64, d, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.UpdateSparse(sparse[i%n])
		}
	})
	b.Run("LM-FD/dense", func(b *testing.B) {
		l := core.NewLMFD(window.Seq(500), d, 16, 6)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Update(dense[i%n], float64(i))
		}
	})
	b.Run("LM-FD/sparse", func(b *testing.B) {
		l := core.NewLMFD(window.Seq(500), d, 16, 6)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.UpdateSparse(sparse[i%n], float64(i))
		}
	})
}

// BenchmarkAblationEH measures the exponential histogram against the
// exact norm buffer at sliding-window scale.
func BenchmarkAblationEH(b *testing.B) {
	b.Run("EH/k=16", func(b *testing.B) {
		h := eh.New(16)
		for i := 0; i < b.N; i++ {
			h.Add(float64(i), 1+float64(i%7))
			if i%64 == 0 {
				h.Estimate(float64(i) - 10000)
			}
		}
	})
	b.Run("ExactNorms", func(b *testing.B) {
		x := window.NewExactNorms(window.Seq(10000))
		for i := 0; i < b.N; i++ {
			x.Add(float64(i), 1+float64(i%7))
			if i%64 == 0 {
				x.FroSq(float64(i))
			}
		}
	})
}

// BenchmarkQueryCost measures the query path (the paper reports update
// cost only; query cost matters for monitoring workloads that probe
// frequently).
func BenchmarkQueryCost(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	d := 64
	rows := denseRows(rng, 4000, d)
	spec := window.Seq(2000)
	sketches := map[string]core.WindowSketch{
		"SWR":   core.NewSWR(spec, 40, d, 1),
		"SWOR":  core.NewSWOR(spec, 40, d, 2),
		"LM-FD": core.NewLMFD(spec, d, 24, 8),
	}
	for name, sk := range sketches {
		for i, r := range rows {
			sk.Update(r, float64(i))
		}
		sk := sk
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sk.Query(float64(len(rows) - 1))
			}
		})
	}
}
